#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/error.h"

namespace eta2::parallel {
namespace {

// Set for pool workers permanently and for the calling thread while it
// participates in a region; nested regions detect it and run inline.
thread_local bool tls_in_region = false;

std::size_t resolve_auto_threads() {
  if (const char* env = std::getenv("ETA2_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::atomic<std::size_t> g_thread_override{0};  // 0 = automatic

// Lazily grown pool of persistent workers. A region posts one job (chunked
// index range + body); the caller and the workers race to grab chunks via an
// atomic cursor. Chunk boundaries are computed from (n, grain) alone, so
// which thread runs a chunk never affects what the chunk computes.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  void run(std::size_t lanes, std::size_t n, std::size_t grain,
           const std::function<void(std::size_t, std::size_t)>& body) {
    // One top-level region at a time; concurrent posters queue here. Bodies
    // never re-enter (nested regions run inline), so this cannot deadlock.
    const std::lock_guard<std::mutex> region_lock(run_mutex_);
    const std::size_t chunks = (n + grain - 1) / grain;
    ensure_workers(lanes - 1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // eta2-lint: allow(guarded-by) — publication pattern: the job fields
      // are written under mutex_ and read by lanes only after they observe
      // the posting under the same mutex (see work_chunks); the analyzer
      // cannot see that happens-before edge.
      body_ = &body;
      n_ = n;
      grain_ = grain;
      chunks_ = chunks;  // eta2-lint: allow(guarded-by) — see body_ above
      done_chunks_ = 0;
      error_ = nullptr;
      next_chunk_.store(0, std::memory_order_relaxed);
      ++generation_;
    }
    work_cv_.notify_all();

    tls_in_region = true;
    work_chunks();
    tls_in_region = false;

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] {
      return done_chunks_ == chunks_ && active_workers_ == 0;
    });
    body_ = nullptr;
    const std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    if (error) std::rethrow_exception(error);
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void ensure_workers(std::size_t count) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (workers_.size() < count) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }

  void worker_main() ETA2_THREAD_ENTRY {
    tls_in_region = true;
    std::uint64_t seen = 0;
    while (true) {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      if (body_ == nullptr) continue;  // job already drained by other lanes
      ++active_workers_;
      lock.unlock();
      work_chunks();
      lock.lock();
      --active_workers_;
      if (done_chunks_ == chunks_ && active_workers_ == 0) {
        lock.unlock();
        done_cv_.notify_all();
      }
    }
  }

  // Grabs and executes chunks until the cursor runs past the end. Job state
  // reads are safe: workers enter only after observing the posting under the
  // mutex, and the poster does not reset state until done_chunks_ == chunks_
  // and every worker has left this function.
  void work_chunks() {
    while (true) {
      const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks_) break;
      const std::size_t begin = c * grain_;
      const std::size_t end = std::min(n_, begin + grain_);
      try {
        (*body_)(begin, end);
        // eta2-lint: allow(catch-all) — exception trampoline: the worker
        // captures whatever the body threw and re-throws it on the posting
        // thread; no type information is lost.
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      std::size_t done;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        done = ++done_chunks_;
      }
      if (done == chunks_) done_cv_.notify_all();
    }
  }

  std::mutex run_mutex_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  bool stop_ ETA2_GUARDED_BY(mutex_) = false;
  std::uint64_t generation_ ETA2_GUARDED_BY(mutex_) = 0;
  std::size_t active_workers_ ETA2_GUARDED_BY(mutex_) = 0;

  // Current job (guarded by mutex_ for posting/reset; read by lanes that
  // observed the posting).
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::size_t n_ = 0;
  std::size_t grain_ = 1;
  std::size_t chunks_ = 0;
  std::size_t done_chunks_ ETA2_GUARDED_BY(mutex_) = 0;
  std::exception_ptr error_ ETA2_GUARDED_BY(mutex_);
  std::atomic<std::size_t> next_chunk_{0};
};

}  // namespace

std::size_t thread_count() {
  const std::size_t override_value =
      g_thread_override.load(std::memory_order_relaxed);
  if (override_value > 0) return override_value;
  return resolve_auto_threads();
}

void set_thread_count(std::size_t n) {
  require(!tls_in_region,
          "set_thread_count: cannot be called inside a parallel region");
  g_thread_override.store(n, std::memory_order_relaxed);
}

bool in_parallel_region() { return tls_in_region; }

void parallel_for_chunks(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = (n + g - 1) / g;
  const std::size_t lanes = thread_count();
  // Serial fallback: same chunk boundaries, ascending order, one thread.
  // The region flag is raised here too so semantics (nesting detection,
  // set_thread_count rejection) match the pooled path at any lane count.
  if (chunks <= 1 || lanes <= 1 || tls_in_region) {
    const bool was_in_region = tls_in_region;
    tls_in_region = true;
    try {
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * g;
        body(begin, std::min(n, begin + g));
      }
      // eta2-lint: allow(catch-all) — scope guard: restores the reentrancy
      // flag and immediately re-throws; nothing is swallowed.
    } catch (...) {
      tls_in_region = was_in_region;
      throw;
    }
    tls_in_region = was_in_region;
    return;
  }
  Pool::instance().run(std::min(lanes, chunks), n, g, body);
}

}  // namespace eta2::parallel
