// Small string utilities used by the text pipeline and the CSV reader.
#ifndef ETA2_COMMON_STRINGS_H
#define ETA2_COMMON_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace eta2 {

// Split `text` on `delimiter`; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delimiter);

// Split on any run of ASCII whitespace; empty tokens are dropped.
[[nodiscard]] std::vector<std::string> split_whitespace(std::string_view text);

// ASCII lower-casing (the text pipeline only handles ASCII task descriptions).
[[nodiscard]] std::string to_lower(std::string_view text);

// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

// True when `text` starts with / ends with the given prefix or suffix.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

// Join items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items, std::string_view separator);

}  // namespace eta2

#endif  // ETA2_COMMON_STRINGS_H
