// Deterministic, seedable random number generation for every stochastic
// component in the library. All experiment code draws randomness through
// Rng so that a (seed, program) pair reproduces bit-identical results.
#ifndef ETA2_COMMON_RNG_H
#define ETA2_COMMON_RNG_H

#include <array>
#include <cstdint>
#include <limits>

namespace eta2 {

// xoshiro256** 1.0 (Blackman & Vigna) seeded through SplitMix64.
// Chosen over std::mt19937 because its output sequence is specified
// independently of the standard library implementation, keeping results
// stable across toolchains.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  // Raw 64 random bits.
  result_type operator()() noexcept;

  // Uniform real in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  // Uniform real in [0, 1).
  [[nodiscard]] double uniform01() noexcept;
  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  // Standard normal via Box-Muller (cached spare deviate).
  [[nodiscard]] double normal() noexcept;
  // Normal with the given mean and standard deviation (stddev >= 0).
  [[nodiscard]] double normal(double mean, double stddev) noexcept;
  // Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p) noexcept;

  // Derive an independent child stream; children with distinct indices are
  // decorrelated from the parent and from each other.
  [[nodiscard]] Rng fork(std::uint64_t stream_index) const noexcept;

  // Complete serializable generator state: the four xoshiro256** words plus
  // the Box-Muller spare. restore(state()) makes the generator continue its
  // output sequence bit-identically — the durability layer journals this
  // before every step so crash recovery can replay it exactly.
  struct State {
    std::array<std::uint64_t, 4> words{};
    double spare_normal = 0.0;
    bool has_spare_normal = false;
  };
  [[nodiscard]] State state() const noexcept {
    return State{state_, spare_normal_, has_spare_normal_};
  }
  void restore(const State& s) noexcept {
    state_ = s.words;
    spare_normal_ = s.spare_normal;
    has_spare_normal_ = s.has_spare_normal;
  }

  // Fisher-Yates shuffle of any random-access container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace eta2

#endif  // ETA2_COMMON_RNG_H
