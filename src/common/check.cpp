#include "common/check.h"

namespace eta2 {
namespace {

std::string format_violation(const char* kind, const char* expression,
                             const char* file, int line) {
  std::string message = "contract violation [";
  message += kind;
  message += "] ";
  message += expression;
  message += " at ";
  message += file;
  message += ":";
  message += std::to_string(line);
  return message;
}

}  // namespace

ContractViolation::ContractViolation(const char* kind, const char* expression,
                                     const char* file, int line)
    : std::logic_error(format_violation(kind, expression, file, line)),
      kind_(kind),
      expression_(expression),
      file_(file),
      line_(line) {}

namespace detail {

void contract_fail(const char* kind, const char* expression, const char* file,
                   int line) {
  throw ContractViolation(kind, expression, file, line);
}

}  // namespace detail
}  // namespace eta2
