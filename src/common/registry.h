// Name-keyed factory registry — the backbone of the pluggable pipeline
// stages (domain identifiers, allocation strategies, truth updaters, truth
// methods). Strategies are selected by string name in configs/CLIs and
// constructed through the registry, so adding a backend is: implement the
// interface, register a factory, done — no enum or switch to extend.
#ifndef ETA2_COMMON_REGISTRY_H
#define ETA2_COMMON_REGISTRY_H

#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace eta2 {

template <typename Interface, typename... Args>
class Registry {
 public:
  using Factory = std::function<std::unique_ptr<Interface>(Args...)>;

  // Registers `factory` under `name`; re-registering a taken name throws
  // (catches accidental double registration early).
  void add(std::string name, Factory factory) {
    require(!name.empty(), "Registry::add: empty name");
    const auto [it, inserted] =
        factories_.emplace(std::move(name), std::move(factory));
    require(inserted, "Registry::add: duplicate name '" + it->first + "'");
  }

  [[nodiscard]] bool contains(std::string_view name) const {
    return factories_.find(std::string(name)) != factories_.end();
  }

  // Registered names, sorted (std::map order) — for CLIs and error text.
  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) out.push_back(name);
    return out;
  }

  // Constructs the strategy registered under `name`; unknown names throw
  // std::invalid_argument listing every registered name.
  [[nodiscard]] std::unique_ptr<Interface> make(std::string_view name,
                                                Args... args) const {
    const auto it = factories_.find(std::string(name));
    if (it == factories_.end()) {
      std::ostringstream msg;
      msg << "unknown strategy '" << name << "'; known:";
      for (const auto& [known, factory] : factories_) msg << ' ' << known;
      throw std::invalid_argument(msg.str());
    }
    return it->second(args...);
  }

 private:
  std::map<std::string, Factory, std::less<>> factories_;
};

}  // namespace eta2

#endif  // ETA2_COMMON_REGISTRY_H
