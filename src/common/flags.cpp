#include "common/flags.h"

#include <cstdlib>

#include "common/strings.h"

namespace eta2 {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(body.substr(0, eq))] = std::string(body.substr(eq + 1));
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[std::string(body)] = argv[++i];
    } else {
      values_[std::string(body)] = "true";
    }
  }
}

Flags Flags::from_tokens(const std::vector<std::string>& tokens) {
  std::vector<const char*> argv;
  argv.reserve(tokens.size() + 1);
  // Placeholder for the program-name slot the argv constructor skips.
  argv.push_back("tokens");
  for (const std::string& token : tokens) argv.push_back(token.c_str());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

bool Flags::has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::string Flags::get(std::string_view name, std::string_view fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? std::string(fallback) : it->second;
}

std::int64_t Flags::get_int(std::string_view name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(std::string_view name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(std::string_view name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second != "false" && it->second != "0";
}

int Flags::seed_count(int fallback) const {
  if (has("seeds")) return static_cast<int>(get_int("seeds", fallback));
  if (const char* env = std::getenv("ETA2_SEEDS"); env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return fallback;
}

}  // namespace eta2
