// Tiny command-line flag parser for the bench/example binaries.
// Accepts `--name=value` and `--name value`; `--name` alone is a boolean true.
// Unrecognized positional arguments are collected separately.
#ifndef ETA2_COMMON_FLAGS_H
#define ETA2_COMMON_FLAGS_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace eta2 {

class Flags {
 public:
  Flags() = default;
  Flags(int argc, const char* const* argv);

  // Parses `tokens` as the arguments AFTER the program name — every token
  // is significant, unlike the argv constructor, which skips argv[0]. Use
  // this to rebuild an invocation from persisted tokens (e.g. a durable
  // campaign manifest), where there is no program-name slot to skip.
  [[nodiscard]] static Flags from_tokens(const std::vector<std::string>& tokens);

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::string get(std::string_view name, std::string_view fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view name, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  // Environment-variable override used by the bench harness: the number of
  // Monte-Carlo seeds defaults to `fallback`, can be raised via --seeds or
  // the ETA2_SEEDS environment variable (flag wins).
  [[nodiscard]] int seed_count(int fallback) const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

}  // namespace eta2

#endif  // ETA2_COMMON_FLAGS_H
