// Minimal CSV writer/reader used to persist generated datasets and bench
// series. Handles quoting of fields containing commas/quotes/newlines, which
// is enough for task descriptions.
#ifndef ETA2_COMMON_CSV_H
#define ETA2_COMMON_CSV_H

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace eta2 {

// Streams rows to an std::ostream. The writer does not own the stream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_row(const std::vector<std::string>& fields);

  // Convenience: formats arithmetic values with full round-trip precision.
  template <typename... Ts>
  void write(const Ts&... fields) {
    std::vector<std::string> row;
    row.reserve(sizeof...(fields));
    (row.push_back(field_to_string(fields)), ...);
    write_row(row);
  }

  [[nodiscard]] static std::string escape(std::string_view field);

 private:
  static std::string field_to_string(const std::string& s) { return s; }
  static std::string field_to_string(const char* s) { return s; }
  static std::string field_to_string(std::string_view s) { return std::string(s); }
  template <typename T>
  static std::string field_to_string(const T& value) {
    return format_number(static_cast<double>(value));
  }
  static std::string format_number(double value);

  std::ostream* out_;
};

// Parses one CSV line into fields, honouring double-quote escaping.
[[nodiscard]] std::vector<std::string> parse_csv_line(std::string_view line);

// Reads a whole CSV document (no header handling) from a string.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(std::string_view text);

}  // namespace eta2

#endif  // ETA2_COMMON_CSV_H
