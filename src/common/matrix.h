// Dense row-major matrix of doubles — the contiguous data plane shared by
// the pipeline stages (PR 1 flattened the allocator-internal p_ij buffer;
// this promotes the same layout to the public AllocationProblem/StepContext
// API). One allocation, cache-friendly row scans, spans instead of nested
// vectors.
#ifndef ETA2_COMMON_MATRIX_H
#define ETA2_COMMON_MATRIX_H

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/error.h"

namespace eta2 {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Literal construction for tests/examples: {{1, 2}, {3, 4}}. Every row
  // must have the same length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
      require(row.size() == cols_, "Matrix: ragged initializer rows");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  // From a nested vector (bridges older call sites; same ragged check).
  static Matrix from_rows(const std::vector<std::vector<double>>& rows) {
    Matrix m;
    m.rows_ = rows.size();
    m.cols_ = m.rows_ == 0 ? 0 : rows.front().size();
    m.data_.reserve(m.rows_ * m.cols_);
    for (const auto& row : rows) {
      require(row.size() == m.cols_, "Matrix::from_rows: ragged rows");
      m.data_.insert(m.data_.end(), row.begin(), row.end());
    }
    return m;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  void assign(std::size_t rows, std::size_t cols, double fill = 0.0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  // Element/row access: bounds are a full-level contract (ETA2_CHECKS=2) —
  // cheap/off builds keep the raw unchecked hot path.
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    ETA2_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const double& operator()(std::size_t r, std::size_t c) const {
    ETA2_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    ETA2_ASSERT(r < rows_ || (r == 0 && rows_ == 0));
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    ETA2_ASSERT(r < rows_ || (r == 0 && rows_ == 0));
    return {data_.data() + r * cols_, cols_};
  }

  // The full row-major buffer (size rows() * cols()).
  [[nodiscard]] std::span<double> data() { return data_; }
  [[nodiscard]] std::span<const double> data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace eta2

#endif  // ETA2_COMMON_MATRIX_H
