// Error handling helpers. Library code validates its preconditions with
// `require(...)`, which throws std::invalid_argument / std::logic_error with
// a message that names the violated condition.
#ifndef ETA2_COMMON_ERROR_H
#define ETA2_COMMON_ERROR_H

#include <stdexcept>
#include <string>
#include <string_view>

namespace eta2 {

// Thrown when a numerical routine fails to make progress (e.g. an MLE loop
// whose inputs are degenerate beyond what regularization can absorb).
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what) : std::runtime_error(what) {}
};

// Thrown from a cooperative cancellation point (a step watchdog observing a
// blown deadline, a shutdown request) to abandon the work in progress. The
// durability layer treats it as terminal for the step — rollback and
// journaled quarantine, never a retry — so a deadline breach costs one
// bounded rollback instead of retries that would blow the deadline again.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what) : std::runtime_error(what) {}
};

// Precondition check: throws std::invalid_argument when `condition` is false.
inline void require(bool condition, std::string_view message) {
  if (!condition) throw std::invalid_argument(std::string(message));
}

// Internal-invariant check: throws std::logic_error when `condition` is false.
inline void ensure(bool condition, std::string_view message) {
  if (!condition) throw std::logic_error(std::string(message));
}

}  // namespace eta2

#endif  // ETA2_COMMON_ERROR_H
