#include "alloc/max_quality.h"

#include <gtest/gtest.h>

#include <cmath>

#include "alloc/knapsack.h"
#include "common/rng.h"
#include "stats/normal.h"

namespace eta2::alloc {
namespace {

AllocationProblem random_problem(std::size_t users, std::size_t tasks,
                                 std::uint64_t seed, double capacity = 6.0) {
  Rng rng(seed);
  AllocationProblem p;
  p.expertise.assign(users, tasks, 0.0);
  for (double& u : p.expertise.data()) u = rng.uniform(0.1, 3.0);
  p.task_time.resize(tasks);
  for (double& t : p.task_time) t = rng.uniform(0.5, 2.0);
  p.user_capacity.assign(users, capacity);
  return p;
}

TEST(MaxQualityTest, RespectsCapacityAlways) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const AllocationProblem p = random_problem(8, 20, seed);
    const MaxQualityAllocator allocator;
    const Allocation a = allocator.allocate(p);
    EXPECT_TRUE(respects_capacity(p, a)) << "seed " << seed;
  }
}

TEST(MaxQualityTest, NoDuplicateAssignments) {
  const AllocationProblem p = random_problem(5, 12, 3);
  const Allocation a = MaxQualityAllocator().allocate(p);
  for (TaskId j = 0; j < p.task_count(); ++j) {
    const auto users = a.users_of(j);
    for (std::size_t x = 0; x < users.size(); ++x) {
      for (std::size_t y = x + 1; y < users.size(); ++y) {
        EXPECT_NE(users[x], users[y]);
      }
    }
  }
}

TEST(MaxQualityTest, FillsCapacityWhenTasksAbound) {
  // With plenty of tasks and positive expertise everywhere the greedy only
  // stops when no user can fit any further task.
  const AllocationProblem p = random_problem(4, 40, 5, /*capacity=*/8.0);
  const Allocation a = MaxQualityAllocator().allocate(p);
  const double min_task_time =
      *std::min_element(p.task_time.begin(), p.task_time.end());
  for (UserId i = 0; i < p.user_count(); ++i) {
    // Remaining slack cannot fit the smallest task the user is not yet
    // assigned to — weaker check: slack below the largest task time.
    const double slack = p.user_capacity[i] - a.used_time(i);
    EXPECT_LT(slack, 2.0 + min_task_time);
  }
}

TEST(MaxQualityTest, PrefersHighExpertiseUser) {
  // One task, two users, capacity for one assignment each; the expert must
  // be chosen first.
  AllocationProblem p;
  p.expertise = {{0.3}, {2.5}};
  p.task_time = {1.0};
  p.user_capacity = {1.0, 1.0};
  GreedyOptions options;
  Allocation a(2, 1);
  greedy_extend(p, options, a);
  ASSERT_GE(a.users_of(0).size(), 1u);
  EXPECT_EQ(a.users_of(0).front(), 1u);
}

TEST(MaxQualityTest, EfficiencyDividesByTime) {
  // Equal gain, different processing times: per-time greedy takes the
  // shorter task first.
  AllocationProblem p;
  p.expertise = {{1.0, 1.0}};
  p.task_time = {4.0, 1.0};
  p.user_capacity = {1.0};  // only the short task fits anyway
  GreedyOptions options;
  Allocation a(1, 2);
  greedy_extend(p, options, a);
  EXPECT_TRUE(a.is_assigned(0, 1));
  EXPECT_FALSE(a.is_assigned(0, 0));
}

TEST(MaxQualityTest, ZeroExpertiseMeansNoAssignment) {
  AllocationProblem p;
  p.expertise = {{0.0, 0.0}};
  p.task_time = {1.0, 1.0};
  p.user_capacity = {10.0};
  const Allocation a = MaxQualityAllocator().allocate(p);
  EXPECT_EQ(a.pair_count(), 0u);  // p_ij = 0 => efficiency 0 => stop
}

TEST(MaxQualityTest, CostCapLimitsNewAssignments) {
  AllocationProblem p = random_problem(4, 10, 7);
  p.task_cost.assign(10, 1.0);
  GreedyOptions options;
  options.cost_cap = 3.0;
  Allocation a(4, 10);
  const std::size_t added = greedy_extend(p, options, a);
  EXPECT_LE(added, 3u);
  EXPECT_GT(added, 0u);
}

TEST(MaxQualityTest, ExtendsExistingAllocationWithoutDuplicates) {
  const AllocationProblem p = random_problem(3, 5, 9);
  Allocation a(3, 5);
  a.assign(0, 0, p.task_time[0], 1.0);
  GreedyOptions options;
  greedy_extend(p, options, a);
  // Still no duplicates and capacity respected.
  EXPECT_TRUE(respects_capacity(p, a));
  const auto users = a.users_of(0);
  int count_user0 = 0;
  for (const UserId u : users) {
    if (u == 0) ++count_user0;
  }
  EXPECT_EQ(count_user0, 1);
}

TEST(MaxQualityTest, HalfApproxPassNeverHurts) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const AllocationProblem p = random_problem(6, 15, seed * 31);
    MaxQualityAllocator::Options with;
    with.half_approx_pass = true;
    MaxQualityAllocator::Options without;
    without.half_approx_pass = false;
    const double obj_with = allocation_objective(
        p, MaxQualityAllocator(with).allocate(p), with.epsilon);
    const double obj_without = allocation_objective(
        p, MaxQualityAllocator(without).allocate(p), without.epsilon);
    EXPECT_GE(obj_with, obj_without - 1e-12) << "seed " << seed;
  }
}

TEST(MaxQualityTest, HalfApproxHandlesAdversarialTaskTimes) {
  // The classic greedy failure: one tiny task with great value-per-time
  // blocks a big task with far larger absolute value. The extra pass must
  // recover at least half the optimum.
  AllocationProblem p;
  p.expertise = {{0.8, 20.0}};
  p.task_time = {0.1, 10.0};
  p.user_capacity = {10.0};
  const Allocation a = MaxQualityAllocator().allocate(p);
  // Optimal: take task 1 alone (p ≈ 0.95); per-time greedy would take task
  // 0 first and then lack capacity for task 1.
  EXPECT_TRUE(a.is_assigned(0, 1));
}

// Single-user instances reduce to knapsack (the paper's NP-hardness proof);
// compare the greedy + extra pass against the exact DP optimum.
class KnapsackComparisonSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackComparisonSweep, WithinHalfOfOptimum) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t tasks = 12;
  AllocationProblem p;
  p.expertise.assign(1, tasks, 0.0);
  p.task_time.resize(tasks);
  std::vector<double> values(tasks);
  for (std::size_t j = 0; j < tasks; ++j) {
    p.expertise(0, j) = rng.uniform(0.1, 10.0);
    p.task_time[j] = rng.uniform(0.2, 4.0);
    values[j] = stats::accuracy_probability(p.expertise(0, j), 0.1);
  }
  p.user_capacity = {6.0};

  const Allocation a = MaxQualityAllocator().allocate(p);
  const double greedy_value = allocation_objective(p, a, 0.1);
  const KnapsackSolution optimal =
      knapsack_exact(values, p.task_time, 6.0, 4000);
  EXPECT_GE(greedy_value, 0.5 * optimal.value - 1e-9) << "seed " << seed;
  // The DP rounds weights up, so its reported optimum can sit slightly
  // below the continuous one the greedy solves; allow that slack.
  EXPECT_LE(greedy_value, optimal.value * 1.02 + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackComparisonSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace eta2::alloc
