#include "alloc/knapsack.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

namespace eta2::alloc {
namespace {

TEST(KnapsackTest, EmptyInput) {
  const KnapsackSolution s = knapsack_exact({}, {}, 10.0);
  EXPECT_DOUBLE_EQ(s.value, 0.0);
  EXPECT_TRUE(s.chosen.empty());
}

TEST(KnapsackTest, ZeroCapacity) {
  const std::vector<double> v{1.0};
  const std::vector<double> w{1.0};
  const KnapsackSolution s = knapsack_exact(v, w, 0.0);
  EXPECT_DOUBLE_EQ(s.value, 0.0);
}

TEST(KnapsackTest, ClassicInstance) {
  // Items: (v=60,w=1), (v=100,w=2), (v=120,w=3); capacity 5 -> 220.
  const std::vector<double> v{60.0, 100.0, 120.0};
  const std::vector<double> w{1.0, 2.0, 3.0};
  const KnapsackSolution s = knapsack_exact(v, w, 5.0);
  EXPECT_DOUBLE_EQ(s.value, 220.0);
  EXPECT_EQ(s.chosen, (std::vector<std::size_t>{1, 2}));
}

TEST(KnapsackTest, TakesAllWhenTheyFit) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  const std::vector<double> w{1.0, 1.0, 1.0};
  const KnapsackSolution s = knapsack_exact(v, w, 10.0);
  EXPECT_DOUBLE_EQ(s.value, 6.0);
  EXPECT_EQ(s.chosen.size(), 3u);
}

TEST(KnapsackTest, SingleHeavyItemExcluded) {
  const std::vector<double> v{100.0, 1.0};
  const std::vector<double> w{10.0, 1.0};
  const KnapsackSolution s = knapsack_exact(v, w, 5.0);
  EXPECT_DOUBLE_EQ(s.value, 1.0);
  EXPECT_EQ(s.chosen, (std::vector<std::size_t>{1}));
}

TEST(KnapsackTest, ChosenSetIsFeasibleAndMatchesValue) {
  const std::vector<double> v{3.0, 8.0, 5.0, 2.0, 7.0};
  const std::vector<double> w{1.5, 3.0, 2.0, 0.7, 2.5};
  const KnapsackSolution s = knapsack_exact(v, w, 6.0);
  double total_w = 0.0;
  double total_v = 0.0;
  for (const std::size_t i : s.chosen) {
    total_w += w[i];
    total_v += v[i];
  }
  EXPECT_LE(total_w, 6.0 + 1e-9);
  EXPECT_DOUBLE_EQ(total_v, s.value);
}

TEST(KnapsackTest, RejectsBadInputs) {
  const std::vector<double> v{1.0};
  const std::vector<double> w{1.0, 2.0};
  EXPECT_THROW(knapsack_exact(v, w, 1.0), std::invalid_argument);
  const std::vector<double> w1{0.0};
  EXPECT_THROW(knapsack_exact(v, w1, 1.0), std::invalid_argument);
  const std::vector<double> neg{-1.0};
  const std::vector<double> w2{1.0};
  EXPECT_THROW(knapsack_exact(neg, w2, 1.0), std::invalid_argument);
  EXPECT_THROW(knapsack_exact(v, w2, 1.0, 0), std::invalid_argument);
}

TEST(KnapsackTest, FractionalWeightsRoundUpSafely) {
  // Rounding up means the solution never overfills the true capacity.
  const std::vector<double> v{1.0, 1.0, 1.0};
  const std::vector<double> w{0.34, 0.33, 0.34};
  const KnapsackSolution s = knapsack_exact(v, w, 1.0, 100);
  double total_w = 0.0;
  for (const std::size_t i : s.chosen) total_w += w[i];
  EXPECT_LE(total_w, 1.0 + 1e-9);
}

}  // namespace
}  // namespace eta2::alloc
