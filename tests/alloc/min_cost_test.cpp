#include "alloc/min_cost.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/normal.h"

namespace eta2::alloc {
namespace {

// A controllable world: users with known expertise observing tasks with
// known truth, so the collect callback can synthesize observations.
struct World {
  AllocationProblem problem;
  std::vector<truth::DomainIndex> domain;
  std::vector<double> mu;
  std::vector<double> sigma;
  std::vector<std::vector<double>> expertise_domain;  // [user][domain]
  Rng rng{0};

  double collect(std::size_t task, std::size_t user) {
    const double u = std::max(0.05, expertise_domain[user][domain[task]]);
    return rng.normal(mu[task], sigma[task] / u);
  }
};

World make_world(std::size_t users, std::size_t tasks, std::uint64_t seed,
                 double capacity = 40.0, double expertise_lo = 0.5,
                 double expertise_hi = 3.0) {
  Rng rng(seed);
  World w;
  w.rng = Rng(seed * 7919 + 3);
  const std::size_t domains = 2;
  w.expertise_domain.assign(users, std::vector<double>(domains, 1.0));
  for (auto& row : w.expertise_domain) {
    for (double& u : row) u = rng.uniform(expertise_lo, expertise_hi);
  }
  w.problem.expertise.assign(users, tasks, 0.0);
  w.problem.task_time.assign(tasks, 1.0);
  w.problem.user_capacity.assign(users, capacity);
  w.domain.resize(tasks);
  w.mu.resize(tasks);
  w.sigma.resize(tasks);
  for (std::size_t j = 0; j < tasks; ++j) {
    w.domain[j] = j % domains;
    w.mu[j] = rng.uniform(0.0, 20.0);
    w.sigma[j] = rng.uniform(0.5, 2.0);
    for (std::size_t i = 0; i < users; ++i) {
      w.problem.expertise(i, j) = w.expertise_domain[i][w.domain[j]];
    }
  }
  return w;
}

TEST(MinCostTest, RejectsBadOptions) {
  MinCostAllocator::Options bad;
  bad.epsilon_bar = 0.0;
  EXPECT_THROW(MinCostAllocator{bad}, std::invalid_argument);
  bad = MinCostAllocator::Options{};
  bad.confidence_alpha = 1.0;
  EXPECT_THROW(MinCostAllocator{bad}, std::invalid_argument);
  bad = MinCostAllocator::Options{};
  bad.cost_per_iteration = 0.0;
  EXPECT_THROW(MinCostAllocator{bad}, std::invalid_argument);
}

TEST(MinCostTest, RequiresCollectCallback) {
  World w = make_world(5, 4, 1);
  const truth::Eta2Mle mle;
  const MinCostAllocator allocator;
  EXPECT_THROW(
      allocator.run(w.problem, w.domain, 2, {}, mle, nullptr),
      std::invalid_argument);
}

TEST(MinCostTest, StopsOnceQualityIsMet) {
  World w = make_world(30, 10, 2, /*capacity=*/40.0, 2.0, 3.0);
  MinCostAllocator::Options options;
  options.epsilon_bar = 1.0;  // loose requirement: a few users suffice
  options.cost_per_iteration = 15.0;
  const MinCostAllocator allocator(options);
  const truth::Eta2Mle mle;
  const auto result = allocator.run(
      w.problem, w.domain, 2, {}, mle,
      [&w](std::size_t j, std::size_t i) { return w.collect(j, i); });
  EXPECT_TRUE(result.quality_met);
  // Far below the exhaustive allocation (30 users x 10 tasks).
  EXPECT_LT(result.allocation.pair_count(), 150u);
  EXPECT_GT(result.allocation.pair_count(), 0u);
}

TEST(MinCostTest, TighterRequirementCostsMore) {
  double cost_loose = 0.0;
  double cost_tight = 0.0;
  for (const double eps_bar : {1.2, 0.6}) {
    World w = make_world(40, 8, 5, /*capacity=*/30.0, 1.5, 3.0);
    MinCostAllocator::Options options;
    options.epsilon_bar = eps_bar;
    options.cost_per_iteration = 10.0;
    const MinCostAllocator allocator(options);
    const truth::Eta2Mle mle;
    const auto result = allocator.run(
        w.problem, w.domain, 2, {}, mle,
        [&w](std::size_t j, std::size_t i) { return w.collect(j, i); });
    (eps_bar > 1.0 ? cost_loose : cost_tight) = result.allocation.total_cost();
  }
  EXPECT_GT(cost_tight, cost_loose);
}

TEST(MinCostTest, TerminatesWhenCapacityExhausted) {
  // Impossible requirement + tiny capacity: must stop without passing.
  World w = make_world(3, 6, 7, /*capacity=*/2.0, 0.3, 0.8);
  MinCostAllocator::Options options;
  options.epsilon_bar = 0.05;  // needs far more info than 3 weak users have
  options.cost_per_iteration = 5.0;
  options.max_data_iterations = 50;
  const MinCostAllocator allocator(options);
  const truth::Eta2Mle mle;
  const auto result = allocator.run(
      w.problem, w.domain, 2, {}, mle,
      [&w](std::size_t j, std::size_t i) { return w.collect(j, i); });
  EXPECT_FALSE(result.quality_met);
  EXPECT_TRUE(respects_capacity(w.problem, result.allocation));
  EXPECT_LT(result.data_iterations, 50);  // stopped by no-progress, not cap
}

TEST(MinCostTest, ReportsUnmetTaskCountInsteadOfLooping) {
  // Same impossible setting as above: Algorithm 2 must stop AND say how
  // many tasks still fail the quality requirement.
  World w = make_world(3, 6, 7, /*capacity=*/2.0, 0.3, 0.8);
  MinCostAllocator::Options options;
  options.epsilon_bar = 0.05;
  options.cost_per_iteration = 5.0;
  options.max_data_iterations = 50;
  const MinCostAllocator allocator(options);
  const truth::Eta2Mle mle;
  const auto result = allocator.run(
      w.problem, w.domain, 2, {}, mle,
      [&w](std::size_t j, std::size_t i) { return w.collect(j, i); });
  EXPECT_FALSE(result.quality_met);
  EXPECT_GT(result.tasks_unmet, 0u);
  EXPECT_LE(result.tasks_unmet, 6u);
}

TEST(MinCostTest, UnmetCountIsZeroWhenQualityMet) {
  World w = make_world(30, 10, 2, /*capacity=*/40.0, 2.0, 3.0);
  MinCostAllocator::Options options;
  options.epsilon_bar = 1.0;
  options.cost_per_iteration = 15.0;
  const MinCostAllocator allocator(options);
  const truth::Eta2Mle mle;
  const auto result = allocator.run(
      w.problem, w.domain, 2, {}, mle,
      [&w](std::size_t j, std::size_t i) { return w.collect(j, i); });
  EXPECT_TRUE(result.quality_met);
  EXPECT_EQ(result.tasks_unmet, 0u);
}

TEST(MinCostTest, ObservationsMatchAllocation) {
  World w = make_world(10, 6, 9);
  const MinCostAllocator allocator;
  const truth::Eta2Mle mle;
  const auto result = allocator.run(
      w.problem, w.domain, 2, {}, mle,
      [&w](std::size_t j, std::size_t i) { return w.collect(j, i); });
  for (std::size_t j = 0; j < 6; ++j) {
    EXPECT_EQ(result.observations.for_task(j).size(),
              result.allocation.users_of(j).size());
    for (const UserId i : result.allocation.users_of(j)) {
      EXPECT_TRUE(result.observations.has_observation(j, i));
    }
  }
}

TEST(MinCostTest, TruthEstimateIsReasonable) {
  World w = make_world(30, 12, 11, /*capacity=*/40.0, 1.5, 3.0);
  const MinCostAllocator allocator;
  const truth::Eta2Mle mle;
  const auto result = allocator.run(
      w.problem, w.domain, 2, {}, mle,
      [&w](std::size_t j, std::size_t i) { return w.collect(j, i); });
  for (std::size_t j = 0; j < 12; ++j) {
    if (std::isnan(result.truth.mu[j])) continue;
    EXPECT_LT(std::fabs(result.truth.mu[j] - w.mu[j]) / w.sigma[j], 1.5)
        << "task " << j;
  }
}

TEST(MinCostTest, CostCapBoundsPerIterationSpending) {
  World w = make_world(20, 10, 13, /*capacity=*/40.0);
  MinCostAllocator::Options options;
  options.cost_per_iteration = 7.0;
  options.epsilon_bar = 0.4;
  options.max_data_iterations = 1;  // observe a single iteration
  const MinCostAllocator allocator(options);
  const truth::Eta2Mle mle;
  const auto result = allocator.run(
      w.problem, w.domain, 2, {}, mle,
      [&w](std::size_t j, std::size_t i) { return w.collect(j, i); });
  // One iteration: spending stops once the cap is reached, so at most
  // cap (+1 pair of unit cost, since the check precedes each selection).
  EXPECT_LE(result.allocation.total_cost(), 8.0);
}

}  // namespace
}  // namespace eta2::alloc
