#include "alloc/baseline_allocators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace eta2::alloc {
namespace {

AllocationProblem uniform_problem(std::size_t users, std::size_t tasks,
                                  double task_time = 1.0,
                                  double capacity = 5.0) {
  AllocationProblem p;
  p.expertise.assign(users, tasks, 1.0);
  p.task_time.assign(tasks, task_time);
  p.user_capacity.assign(users, capacity);
  return p;
}

TEST(RandomAllocatorTest, RespectsCapacity) {
  const AllocationProblem p = uniform_problem(6, 30);
  Rng rng(1);
  const Allocation a = RandomAllocator().allocate(p, rng);
  EXPECT_TRUE(respects_capacity(p, a));
  // Capacity 5 with unit tasks: every user carries exactly 5 tasks
  // (30 tasks are plenty).
  for (UserId i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(a.used_time(i), 5.0);
  }
}

TEST(RandomAllocatorTest, DeterministicGivenRngState) {
  const AllocationProblem p = uniform_problem(4, 10);
  Rng rng_a(9);
  Rng rng_b(9);
  const Allocation a = RandomAllocator().allocate(p, rng_a);
  const Allocation b = RandomAllocator().allocate(p, rng_b);
  for (TaskId j = 0; j < 10; ++j) {
    EXPECT_EQ(std::vector<UserId>(a.users_of(j).begin(), a.users_of(j).end()),
              std::vector<UserId>(b.users_of(j).begin(), b.users_of(j).end()));
  }
}

TEST(RandomAllocatorTest, DifferentSeedsGiveDifferentAllocations) {
  const AllocationProblem p = uniform_problem(6, 30);
  Rng rng_a(1);
  Rng rng_b(2);
  const Allocation a = RandomAllocator().allocate(p, rng_a);
  const Allocation b = RandomAllocator().allocate(p, rng_b);
  bool any_difference = false;
  for (TaskId j = 0; j < 30 && !any_difference; ++j) {
    std::vector<UserId> ua(a.users_of(j).begin(), a.users_of(j).end());
    std::vector<UserId> ub(b.users_of(j).begin(), b.users_of(j).end());
    std::sort(ua.begin(), ua.end());
    std::sort(ub.begin(), ub.end());
    any_difference = ua != ub;
  }
  EXPECT_TRUE(any_difference);
}

TEST(RandomAllocatorTest, MaxUsersPerTaskCap) {
  const AllocationProblem p = uniform_problem(10, 4, 1.0, 10.0);
  RandomAllocator::Options options;
  options.max_users_per_task = 2;
  Rng rng(3);
  const Allocation a = RandomAllocator(options).allocate(p, rng);
  for (TaskId j = 0; j < 4; ++j) {
    EXPECT_LE(a.users_of(j).size(), 2u);
  }
}

TEST(RandomAllocatorTest, SpreadsTasksAcrossUsers) {
  const AllocationProblem p = uniform_problem(20, 20, 1.0, 3.0);
  Rng rng(5);
  const Allocation a = RandomAllocator().allocate(p, rng);
  // All users participate (capacity 3 each, 60 slots for 20x20 pairs).
  std::size_t users_with_work = 0;
  for (UserId i = 0; i < 20; ++i) {
    if (a.used_time(i) > 0.0) ++users_with_work;
  }
  EXPECT_GE(users_with_work, 18u);
}

TEST(ReliabilityGreedyTest, HighReliabilityUsersGetShortTasksFirst) {
  AllocationProblem p;
  p.expertise.assign(2, 2, 1.0);
  p.task_time = {3.0, 1.0};   // task 1 is shorter
  p.user_capacity = {1.0, 4.0};  // user 0 can only fit the short task
  const std::vector<double> reliability = {0.9, 0.1};
  const Allocation a = ReliabilityGreedyAllocator().allocate(p, reliability);
  // The reliable user 0 must hold the short task.
  EXPECT_TRUE(a.is_assigned(0, 1));
  EXPECT_FALSE(a.is_assigned(0, 0));
  EXPECT_TRUE(respects_capacity(p, a));
}

TEST(ReliabilityGreedyTest, RoundRobinCoversTasksBeforeDuplicating) {
  const AllocationProblem p = uniform_problem(4, 4, 1.0, 4.0);
  const std::vector<double> reliability = {0.4, 0.3, 0.2, 0.1};
  const Allocation a = ReliabilityGreedyAllocator().allocate(p, reliability);
  // Full capacity: every user ends up on every task.
  for (TaskId j = 0; j < 4; ++j) {
    EXPECT_EQ(a.users_of(j).size(), 4u);
  }
}

TEST(ReliabilityGreedyTest, CapacityZeroUserGetsNothing) {
  AllocationProblem p = uniform_problem(2, 3);
  p.user_capacity[0] = 0.0;
  const std::vector<double> reliability = {1.0, 0.5};
  const Allocation a = ReliabilityGreedyAllocator().allocate(p, reliability);
  EXPECT_DOUBLE_EQ(a.used_time(0), 0.0);
  EXPECT_GT(a.used_time(1), 0.0);
}

TEST(ReliabilityGreedyTest, MaxUsersPerTaskCap) {
  const AllocationProblem p = uniform_problem(6, 2, 1.0, 2.0);
  ReliabilityGreedyAllocator::Options options;
  options.max_users_per_task = 3;
  const std::vector<double> reliability(6, 1.0);
  const Allocation a =
      ReliabilityGreedyAllocator(options).allocate(p, reliability);
  for (TaskId j = 0; j < 2; ++j) {
    EXPECT_LE(a.users_of(j).size(), 3u);
  }
}

TEST(ReliabilityGreedyTest, RejectsReliabilitySizeMismatch) {
  const AllocationProblem p = uniform_problem(3, 2);
  const std::vector<double> wrong_size = {1.0, 0.5};
  EXPECT_THROW(ReliabilityGreedyAllocator().allocate(p, wrong_size),
               std::invalid_argument);
}

TEST(ReliabilityGreedyTest, DeterministicWithTies) {
  const AllocationProblem p = uniform_problem(4, 6, 1.0, 2.0);
  const std::vector<double> reliability(4, 0.5);  // all tied
  const Allocation a = ReliabilityGreedyAllocator().allocate(p, reliability);
  const Allocation b = ReliabilityGreedyAllocator().allocate(p, reliability);
  for (TaskId j = 0; j < 6; ++j) {
    EXPECT_EQ(std::vector<UserId>(a.users_of(j).begin(), a.users_of(j).end()),
              std::vector<UserId>(b.users_of(j).begin(), b.users_of(j).end()));
  }
}

}  // namespace
}  // namespace eta2::alloc
