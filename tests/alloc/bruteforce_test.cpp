#include "alloc/bruteforce.h"

#include <gtest/gtest.h>

#include "alloc/max_quality.h"
#include "common/rng.h"

namespace eta2::alloc {
namespace {

constexpr double kEpsilon = 0.1;

AllocationProblem random_tiny(std::uint64_t seed) {
  Rng rng(seed);
  AllocationProblem p;
  const std::size_t users = 3;
  const std::size_t tasks = 4;
  p.expertise.assign(users, tasks, 0.0);
  for (double& u : p.expertise.data()) u = rng.uniform(0.2, 6.0);
  p.task_time.resize(tasks);
  for (double& t : p.task_time) t = rng.uniform(0.5, 3.0);
  p.user_capacity.assign(users, rng.uniform(2.0, 5.0));
  return p;
}

TEST(BruteForceTest, RejectsLargeInstances) {
  AllocationProblem p;
  p.expertise.assign(5, 5, 1.0);
  p.task_time.assign(5, 1.0);
  p.user_capacity.assign(5, 1.0);
  EXPECT_THROW(optimal_allocation_bruteforce(p, kEpsilon),
               std::invalid_argument);
}

TEST(BruteForceTest, SaturatesWhenCapacityAllows) {
  AllocationProblem p;
  p.expertise.assign(2, 2, 2.0);
  p.task_time.assign(2, 1.0);
  p.user_capacity.assign(2, 10.0);
  const BruteForceResult r = optimal_allocation_bruteforce(p, kEpsilon);
  // Monotone objective: the optimum takes every pair.
  EXPECT_EQ(r.allocation.pair_count(), 4u);
}

TEST(BruteForceTest, RespectsCapacity) {
  const AllocationProblem p = random_tiny(7);
  const BruteForceResult r = optimal_allocation_bruteforce(p, kEpsilon);
  EXPECT_TRUE(respects_capacity(p, r.allocation));
}

// The headline property: the greedy + ½-approx pass achieves at least half
// of the true multi-user optimum (paper §5.1.2). In practice it is usually
// much closer; assert the guarantee.
class GreedyVsOptimalSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyVsOptimalSweep, GreedyWithinHalfOfTrueOptimum) {
  const AllocationProblem p = random_tiny(GetParam());
  const BruteForceResult optimal = optimal_allocation_bruteforce(p, kEpsilon);
  const Allocation greedy = MaxQualityAllocator().allocate(p);
  const double greedy_objective = allocation_objective(p, greedy, kEpsilon);
  EXPECT_GE(greedy_objective, 0.5 * optimal.objective - 1e-12)
      << "seed " << GetParam();
  EXPECT_LE(greedy_objective, optimal.objective + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsOptimalSweep,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace eta2::alloc
