// Sharded CELF coordination tests: for every shard layout the per-shard
// engines + serial capacity-coordination pass must reproduce the monolithic
// greedy's selection sequence exactly (DESIGN.md §12), because the golden
// transcripts pin the monolithic allocations bit-for-bit.
#include "alloc/sharded_greedy.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

#include "alloc/max_quality.h"
#include "common/rng.h"

namespace eta2::alloc {
namespace {

AllocationProblem random_problem(std::size_t users, std::size_t tasks,
                                 std::uint64_t seed, double capacity = 6.0) {
  Rng rng(seed);
  AllocationProblem p;
  p.expertise.assign(users, tasks, 0.0);
  for (double& u : p.expertise.data()) u = rng.uniform(0.1, 3.0);
  p.task_time.resize(tasks);
  for (double& t : p.task_time) t = rng.uniform(0.5, 2.0);
  p.user_capacity.assign(users, capacity);
  return p;
}

// A few shard layouts covering the edge shapes: everything in one shard,
// round-robin over 3, one task per shard, and layouts with empty shards.
std::vector<std::vector<std::vector<std::size_t>>> shard_layouts(
    std::size_t tasks) {
  std::vector<std::vector<std::vector<std::size_t>>> layouts;
  {
    std::vector<std::size_t> all(tasks);
    for (std::size_t j = 0; j < tasks; ++j) all[j] = j;
    layouts.push_back({all});
  }
  {
    std::vector<std::vector<std::size_t>> rr(3);
    for (std::size_t j = 0; j < tasks; ++j) rr[j % 3].push_back(j);
    layouts.push_back(rr);
  }
  {
    std::vector<std::vector<std::size_t>> singles(tasks);
    for (std::size_t j = 0; j < tasks; ++j) singles[j].push_back(j);
    layouts.push_back(singles);
  }
  {
    // Empty shards interleaved with a lopsided split.
    std::vector<std::vector<std::size_t>> holes(4);
    for (std::size_t j = 0; j < tasks; ++j) {
      holes[j < tasks / 4 ? 0 : 2].push_back(j);
    }
    layouts.push_back(holes);
  }
  return layouts;
}

void expect_same_allocation(const AllocationProblem& p, const Allocation& a,
                            const Allocation& b, const char* what) {
  ASSERT_EQ(a.pair_count(), b.pair_count()) << what;
  for (TaskId j = 0; j < p.task_count(); ++j) {
    const auto ua = a.users_of(j);
    const auto ub = b.users_of(j);
    ASSERT_EQ(ua.size(), ub.size()) << what << " task " << j;
    for (std::size_t x = 0; x < ua.size(); ++x) {
      EXPECT_EQ(ua[x], ub[x]) << what << " task " << j;
    }
  }
  EXPECT_EQ(a.total_cost(), b.total_cost()) << what;
}

TEST(ShardedGreedyTest, MatchesMonolithicAcrossLayoutsAndSeeds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const AllocationProblem p = random_problem(6, 16, seed);
    for (const bool per_time : {true, false}) {
      GreedyOptions options;
      options.efficiency_per_time = per_time;
      Allocation reference(p.user_count(), p.task_count());
      greedy_extend(p, options, reference);
      for (const auto& layout : shard_layouts(p.task_count())) {
        Allocation sharded(p.user_count(), p.task_count());
        sharded_greedy_extend(p, options, layout, sharded);
        expect_same_allocation(p, reference, sharded, "layout");
      }
    }
  }
}

TEST(ShardedGreedyTest, RespectsCostCapLikeMonolithic) {
  const AllocationProblem p = random_problem(5, 12, 9);
  GreedyOptions options;
  options.cost_cap = 4.0;
  Allocation reference(p.user_count(), p.task_count());
  const std::size_t ref_added = greedy_extend(p, options, reference);
  for (const auto& layout : shard_layouts(p.task_count())) {
    Allocation sharded(p.user_count(), p.task_count());
    const std::size_t added = sharded_greedy_extend(p, options, layout, sharded);
    EXPECT_EQ(added, ref_added);
    expect_same_allocation(p, reference, sharded, "cost_cap");
  }
}

TEST(ShardedGreedyTest, ExtendsPartialAllocationIdentically) {
  const AllocationProblem p = random_problem(5, 10, 13);
  GreedyOptions options;
  Allocation seeded(p.user_count(), p.task_count());
  seeded.assign(0, 0, p.task_time[0], p.cost_of(0));
  seeded.assign(2, 3, p.task_time[3], p.cost_of(3));
  Allocation reference = seeded;
  greedy_extend(p, options, reference);
  for (const auto& layout : shard_layouts(p.task_count())) {
    Allocation sharded = seeded;
    sharded_greedy_extend(p, options, layout, sharded);
    expect_same_allocation(p, reference, sharded, "partial");
  }
}

TEST(ShardedGreedyTest, CountersCoverEveryMonolithicSelection) {
  const AllocationProblem p = random_problem(6, 16, 3);
  GreedyOptions options;
  GreedyStats mono;
  Allocation reference(p.user_count(), p.task_count());
  greedy_extend(p, options, reference, &mono);
  std::vector<std::vector<std::size_t>> rr(3);
  for (std::size_t j = 0; j < p.task_count(); ++j) rr[j % 3].push_back(j);
  GreedyStats stats;
  std::vector<double> build_ns;
  Allocation sharded(p.user_count(), p.task_count());
  sharded_greedy_extend(p, options, rr, sharded, &stats, &build_ns);
  EXPECT_EQ(stats.selections, mono.selections);
  // Per-shard engines may evaluate more gains than the single heap (each
  // shard re-validates against every commit) but never fewer.
  EXPECT_GE(stats.gain_evaluations, mono.gain_evaluations);
  ASSERT_EQ(build_ns.size(), 3u);
  for (const double ns : build_ns) EXPECT_GE(ns, 0.0);
}

TEST(ShardedGreedyTest, RejectsBadPartitions) {
  const AllocationProblem p = random_problem(4, 6, 2);
  GreedyOptions options;
  Allocation a(p.user_count(), p.task_count());
  // Missing task 5.
  std::vector<std::vector<std::size_t>> missing = {{0, 1, 2}, {3, 4}};
  EXPECT_THROW(sharded_greedy_extend(p, options, missing, a),
               std::invalid_argument);
  // Task 1 in two shards.
  std::vector<std::vector<std::size_t>> dup = {{0, 1, 2}, {1, 3, 4, 5}};
  EXPECT_THROW(sharded_greedy_extend(p, options, dup, a),
               std::invalid_argument);
  // Out-of-range task id.
  std::vector<std::vector<std::size_t>> oob = {{0, 1, 2, 3, 4, 5, 6}};
  EXPECT_THROW(sharded_greedy_extend(p, options, oob, a),
               std::invalid_argument);
}

TEST(ShardedMaxQualityTest, MatchesMonolithicAllocator) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const AllocationProblem p = random_problem(6, 14, seed);
    for (const bool half : {true, false}) {
      MaxQualityAllocator::Options options;
      options.half_approx_pass = half;
      GreedyStats mono_stats;
      const Allocation reference =
          MaxQualityAllocator(options).allocate(p, &mono_stats);
      std::vector<std::vector<std::size_t>> rr(4);
      for (std::size_t j = 0; j < p.task_count(); ++j) rr[j % 4].push_back(j);
      GreedyStats stats;
      const Allocation sharded =
          sharded_max_quality_allocate(p, options, rr, &stats);
      expect_same_allocation(p, reference, sharded, "max-quality");
      EXPECT_EQ(stats.selections, mono_stats.selections);
    }
  }
}

}  // namespace
}  // namespace eta2::alloc
