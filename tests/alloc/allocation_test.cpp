#include "alloc/allocation.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/normal.h"

namespace eta2::alloc {
namespace {

AllocationProblem small_problem() {
  AllocationProblem p;
  p.expertise = {{1.0, 2.0}, {0.5, 3.0}};  // 2 users x 2 tasks
  p.task_time = {1.0, 2.0};
  p.user_capacity = {4.0, 4.0};
  return p;
}

TEST(AllocationProblemTest, ValidatesShapes) {
  AllocationProblem p = small_problem();
  EXPECT_NO_THROW(p.validate());
  p.user_capacity = {1.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = small_problem();
  p.expertise = {{1.0}, {0.5}};  // 2x1 plane vs 2 tasks: shape mismatch
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = small_problem();
  p.task_time[0] = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = small_problem();
  p.expertise(1, 0) = -0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = small_problem();
  p.task_cost = {1.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(AllocationProblemTest, DefaultCostIsOne) {
  const AllocationProblem p = small_problem();
  EXPECT_DOUBLE_EQ(p.cost_of(0), 1.0);
  AllocationProblem with_cost = small_problem();
  with_cost.task_cost = {2.0, 3.0};
  EXPECT_DOUBLE_EQ(with_cost.cost_of(1), 3.0);
}

TEST(AllocationTest, AssignTracksBooks) {
  Allocation a(2, 2);
  a.assign(0, 1, 2.0, 1.0);
  a.assign(1, 1, 2.0, 1.5);
  EXPECT_TRUE(a.is_assigned(0, 1));
  EXPECT_FALSE(a.is_assigned(0, 0));
  EXPECT_EQ(a.users_of(1).size(), 2u);
  EXPECT_DOUBLE_EQ(a.used_time(0), 2.0);
  EXPECT_DOUBLE_EQ(a.total_cost(), 2.5);
  EXPECT_EQ(a.pair_count(), 2u);
}

TEST(AllocationTest, RejectsDuplicatesAndBadIndices) {
  Allocation a(1, 1);
  a.assign(0, 0, 1.0, 1.0);
  EXPECT_THROW(a.assign(0, 0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(a.assign(1, 0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(a.assign(0, 1, 1.0, 1.0), std::invalid_argument);
}

TEST(ObjectiveTest, SingleUserMatchesEq11) {
  const AllocationProblem p = small_problem();
  Allocation a(2, 2);
  a.assign(0, 0, 1.0, 1.0);
  const double expected = stats::accuracy_probability(1.0, 0.1);
  EXPECT_NEAR(task_success_probability(p, a, 0, 0.1), expected, 1e-12);
  EXPECT_NEAR(allocation_objective(p, a, 0.1), expected, 1e-12);
}

TEST(ObjectiveTest, MultipleUsersComposeAsEq10) {
  const AllocationProblem p = small_problem();
  Allocation a(2, 2);
  a.assign(0, 1, 2.0, 1.0);
  a.assign(1, 1, 2.0, 1.0);
  const double p0 = stats::accuracy_probability(2.0, 0.1);
  const double p1 = stats::accuracy_probability(3.0, 0.1);
  EXPECT_NEAR(task_success_probability(p, a, 1, 0.1),
              1.0 - (1.0 - p0) * (1.0 - p1), 1e-12);
}

TEST(ObjectiveTest, EmptyAllocationScoresZero) {
  const AllocationProblem p = small_problem();
  const Allocation a(2, 2);
  EXPECT_DOUBLE_EQ(allocation_objective(p, a, 0.1), 0.0);
}

TEST(ObjectiveTest, MonotoneInAddedUsers) {
  const AllocationProblem p = small_problem();
  Allocation a(2, 2);
  const double before = allocation_objective(p, a, 0.1);
  a.assign(0, 0, 1.0, 1.0);
  const double mid = allocation_objective(p, a, 0.1);
  a.assign(1, 0, 1.0, 1.0);
  const double after = allocation_objective(p, a, 0.1);
  EXPECT_LT(before, mid);
  EXPECT_LT(mid, after);
}

TEST(CapacityTest, DetectsViolations) {
  const AllocationProblem p = small_problem();
  Allocation ok(2, 2);
  ok.assign(0, 0, 1.0, 1.0);
  ok.assign(0, 1, 2.0, 1.0);
  EXPECT_TRUE(respects_capacity(p, ok));
  Allocation bad(2, 2);
  bad.assign(0, 0, 5.0, 1.0);  // exceeds capacity 4
  EXPECT_FALSE(respects_capacity(p, bad));
}

}  // namespace
}  // namespace eta2::alloc
