// Property tests of the max-quality objective (paper Eq. 12): the proof in
// §5.1.2 relies on it being monotone and submodular in the set of selected
// user-task pairs; these tests check both properties on random instances.
#include <gtest/gtest.h>

#include <vector>

#include "alloc/allocation.h"
#include "common/rng.h"
#include "stats/normal.h"

namespace eta2::alloc {
namespace {

constexpr double kEpsilon = 0.1;

AllocationProblem random_problem(std::size_t users, std::size_t tasks,
                                 std::uint64_t seed) {
  Rng rng(seed);
  AllocationProblem p;
  p.expertise.assign(users, tasks, 0.0);
  for (double& u : p.expertise.data()) u = rng.uniform(0.0, 5.0);
  p.task_time.assign(tasks, 1.0);
  p.user_capacity.assign(users, 1e9);  // capacity plays no role here
  return p;
}

Allocation from_pairs(const AllocationProblem& p,
                      const std::vector<std::pair<UserId, TaskId>>& pairs) {
  Allocation a(p.user_count(), p.task_count());
  for (const auto& [i, j] : pairs) a.assign(i, j, p.task_time[j], 1.0);
  return a;
}

class ObjectivePropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ObjectivePropertySweep, MonotoneAndSubmodular) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 37 + 5);
  const std::size_t users = 5;
  const std::size_t tasks = 4;
  const AllocationProblem p = random_problem(users, tasks, seed);

  // Random nested pair sets A ⊆ B and an extra pair x ∉ B.
  std::vector<std::pair<UserId, TaskId>> all_pairs;
  for (UserId i = 0; i < users; ++i) {
    for (TaskId j = 0; j < tasks; ++j) all_pairs.emplace_back(i, j);
  }
  rng.shuffle(all_pairs);
  const std::size_t a_size = 3;
  const std::size_t b_size = 8;
  const std::vector<std::pair<UserId, TaskId>> set_a(all_pairs.begin(),
                                                     all_pairs.begin() + a_size);
  const std::vector<std::pair<UserId, TaskId>> set_b(all_pairs.begin(),
                                                     all_pairs.begin() + b_size);
  const auto x = all_pairs[b_size];  // not in A or B

  const double f_a = allocation_objective(p, from_pairs(p, set_a), kEpsilon);
  const double f_b = allocation_objective(p, from_pairs(p, set_b), kEpsilon);

  auto with = [](std::vector<std::pair<UserId, TaskId>> s,
                 std::pair<UserId, TaskId> extra) {
    s.push_back(extra);
    return s;
  };
  const double f_ax =
      allocation_objective(p, from_pairs(p, with(set_a, x)), kEpsilon);
  const double f_bx =
      allocation_objective(p, from_pairs(p, with(set_b, x)), kEpsilon);

  // Monotone: adding a pair never lowers the objective.
  EXPECT_GE(f_ax, f_a - 1e-12);
  EXPECT_GE(f_bx, f_b - 1e-12);
  EXPECT_GE(f_b, f_a - 1e-12);  // A ⊆ B
  // Submodular: the marginal gain of x shrinks on the larger set.
  EXPECT_GE((f_ax - f_a) - (f_bx - f_b), -1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectivePropertySweep,
                         ::testing::Range<std::uint64_t>(1, 21));

// The exact marginal-gain identity used by Algorithm 1's efficiency
// (Eq. 16): adding user i to task j increases the objective by
// p_ij · (1 − p_j).
TEST(ObjectiveGainTest, MatchesEq16) {
  const AllocationProblem p = random_problem(4, 3, 99);
  Allocation a(4, 3);
  a.assign(0, 1, 1.0, 1.0);
  a.assign(2, 1, 1.0, 1.0);
  const double before = allocation_objective(p, a, kEpsilon);
  const double p_j = task_success_probability(p, a, 1, kEpsilon);
  const double p_ij = stats::accuracy_probability(p.expertise(3, 1), kEpsilon);
  a.assign(3, 1, 1.0, 1.0);
  const double after = allocation_objective(p, a, kEpsilon);
  EXPECT_NEAR(after - before, p_ij * (1.0 - p_j), 1e-12);
}

}  // namespace
}  // namespace eta2::alloc
