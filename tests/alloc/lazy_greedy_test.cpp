// CELF-vs-rescan equivalence suite (DESIGN.md §11): the lazy greedy must
// produce byte-identical Allocations to the rescanning reference — same
// pairs in the same selection order — across random problems, both
// efficiency modes, cost caps that bind mid-stream, degenerate inputs, and
// thread counts, while evaluating far fewer gains.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <tuple>
#include <vector>

#include "alloc/max_quality.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace eta2::alloc {
namespace {

// Byte-identical: identical pair sets AND identical per-task user order —
// users_of(j) records assignment order, so this pins the whole selection
// sequence, not just the final set.
void expect_identical(const Allocation& lazy, const Allocation& rescan) {
  ASSERT_EQ(lazy.user_count(), rescan.user_count());
  ASSERT_EQ(lazy.task_count(), rescan.task_count());
  EXPECT_EQ(lazy.pair_count(), rescan.pair_count());
  EXPECT_EQ(lazy.total_cost(), rescan.total_cost());
  for (TaskId j = 0; j < lazy.task_count(); ++j) {
    const auto a = lazy.users_of(j);
    const auto b = rescan.users_of(j);
    ASSERT_EQ(a.size(), b.size()) << "task " << j;
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k], b[k]) << "task " << j << " slot " << k;
    }
  }
  for (UserId i = 0; i < lazy.user_count(); ++i) {
    EXPECT_EQ(lazy.used_time(i), rescan.used_time(i)) << "user " << i;
  }
}

AllocationProblem random_problem(std::uint64_t seed, std::size_t users,
                                 std::size_t tasks) {
  Rng rng(seed * 7919 + 13);
  AllocationProblem p;
  p.expertise.assign(users, tasks, 0.0);
  for (double& u : p.expertise.data()) u = rng.uniform(0.0, 4.0);
  p.task_time.resize(tasks);
  for (double& t : p.task_time) t = rng.uniform(0.5, 2.5);
  p.user_capacity.resize(users);
  for (double& c : p.user_capacity) c = rng.uniform(2.0, 8.0);
  return p;
}

struct RunResult {
  Allocation allocation{0, 0};
  GreedyStats stats;
  std::size_t added = 0;
};

RunResult run(const AllocationProblem& p, GreedyOptions options,
              GreedyImpl impl) {
  options.impl = impl;
  RunResult result{Allocation(p.user_count(), p.task_count()), {}, 0};
  result.added = greedy_extend(p, options, result.allocation, &result.stats);
  return result;
}

class LazyGreedySweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(LazyGreedySweep, MatchesRescanByteForByte) {
  const auto [seed, per_time] = GetParam();
  const AllocationProblem p = random_problem(seed, 9, 14);
  GreedyOptions options;
  options.efficiency_per_time = per_time;
  const RunResult lazy = run(p, options, GreedyImpl::kLazy);
  const RunResult rescan = run(p, options, GreedyImpl::kRescan);
  EXPECT_EQ(lazy.added, rescan.added) << "seed " << seed;
  EXPECT_EQ(lazy.stats.selections, rescan.stats.selections);
  expect_identical(lazy.allocation, rescan.allocation);
  EXPECT_LE(lazy.stats.gain_evaluations, rescan.stats.gain_evaluations)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LazyGreedySweep,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 17),
                       ::testing::Bool()));

TEST(LazyGreedyTest, CostCapBindingMidStreamMatches) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    AllocationProblem p = random_problem(seed, 6, 10);
    p.task_cost.resize(10);
    Rng rng(seed);
    for (double& c : p.task_cost) c = rng.uniform(0.5, 2.0);
    for (const double cap : {0.0, 1.0, 3.5, 7.0}) {
      GreedyOptions options;
      options.cost_cap = cap;
      const RunResult lazy = run(p, options, GreedyImpl::kLazy);
      const RunResult rescan = run(p, options, GreedyImpl::kRescan);
      EXPECT_EQ(lazy.added, rescan.added) << "seed " << seed << " cap " << cap;
      expect_identical(lazy.allocation, rescan.allocation);
    }
  }
}

TEST(LazyGreedyTest, DegenerateProblemsMatch) {
  // Zero-capacity users: nothing can be assigned.
  {
    AllocationProblem p = random_problem(3, 5, 7);
    p.user_capacity.assign(5, 0.0);
    const RunResult lazy = run(p, {}, GreedyImpl::kLazy);
    const RunResult rescan = run(p, {}, GreedyImpl::kRescan);
    EXPECT_EQ(lazy.added, 0u);
    EXPECT_EQ(rescan.added, 0u);
    expect_identical(lazy.allocation, rescan.allocation);
  }
  // Single task: every feasible user is assigned in p-descending order.
  {
    const AllocationProblem p = random_problem(4, 6, 1);
    const RunResult lazy = run(p, {}, GreedyImpl::kLazy);
    const RunResult rescan = run(p, {}, GreedyImpl::kRescan);
    EXPECT_GT(lazy.added, 0u);
    expect_identical(lazy.allocation, rescan.allocation);
  }
  // All-zero expertise: p_ij = 0 everywhere, zero gain, nothing selected.
  {
    AllocationProblem p = random_problem(5, 5, 6);
    for (double& u : p.expertise.data()) u = 0.0;
    const RunResult lazy = run(p, {}, GreedyImpl::kLazy);
    const RunResult rescan = run(p, {}, GreedyImpl::kRescan);
    EXPECT_EQ(lazy.added, 0u);
    EXPECT_EQ(rescan.added, 0u);
    expect_identical(lazy.allocation, rescan.allocation);
  }
  // Uniform expertise: every efficiency ties; the lowest-index tie-breaks
  // must agree exactly.
  {
    AllocationProblem p = random_problem(6, 5, 6);
    for (double& u : p.expertise.data()) u = 1.5;
    p.task_time.assign(6, 1.0);
    p.user_capacity.assign(5, 3.0);
    const RunResult lazy = run(p, {}, GreedyImpl::kLazy);
    const RunResult rescan = run(p, {}, GreedyImpl::kRescan);
    EXPECT_EQ(lazy.added, rescan.added);
    expect_identical(lazy.allocation, rescan.allocation);
  }
}

TEST(LazyGreedyTest, ExtendingPrepopulatedAllocationMatches) {
  const AllocationProblem p = random_problem(11, 8, 12);
  GreedyOptions options;
  options.cost_cap = 5.0;
  Allocation lazy(8, 12);
  Allocation rescan(8, 12);
  // First a capped round, then extend the same allocation unbounded — the
  // second round must account for the first round's miss probabilities.
  options.impl = GreedyImpl::kLazy;
  greedy_extend(p, options, lazy);
  options.impl = GreedyImpl::kRescan;
  greedy_extend(p, options, rescan);
  expect_identical(lazy, rescan);

  options.cost_cap = std::numeric_limits<double>::infinity();
  options.impl = GreedyImpl::kLazy;
  greedy_extend(p, options, lazy);
  options.impl = GreedyImpl::kRescan;
  greedy_extend(p, options, rescan);
  expect_identical(lazy, rescan);
}

TEST(LazyGreedyTest, IdenticalAcrossThreadCounts) {
  const AllocationProblem p = random_problem(21, 12, 20);
  const RunResult reference = run(p, {}, GreedyImpl::kRescan);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::set_thread_count(threads);
    const RunResult lazy = run(p, {}, GreedyImpl::kLazy);
    expect_identical(lazy.allocation, reference.allocation);
  }
  parallel::set_thread_count(0);  // restore the default
}

TEST(LazyGreedyTest, EvaluatesFarFewerGainsThanRescan) {
  // The acceptance bar is ≥5× at bench scale (200×600); this guards the
  // asymptotics at a size small enough for the test suite.
  const AllocationProblem p = random_problem(31, 60, 150);
  GreedyOptions options;
  const RunResult lazy = run(p, options, GreedyImpl::kLazy);
  const RunResult rescan = run(p, options, GreedyImpl::kRescan);
  expect_identical(lazy.allocation, rescan.allocation);
  EXPECT_GT(lazy.stats.heap_pops, 0u);
  EXPECT_GE(rescan.stats.gain_evaluations,
            5 * lazy.stats.gain_evaluations);
}

TEST(LazyGreedyTest, AllocatorUsesLazyByDefaultAndMatchesRescan) {
  const AllocationProblem p = random_problem(41, 10, 16);
  MaxQualityAllocator::Options lazy_options;
  MaxQualityAllocator::Options rescan_options;
  rescan_options.impl = GreedyImpl::kRescan;
  const Allocation lazy = MaxQualityAllocator(lazy_options).allocate(p);
  const Allocation rescan = MaxQualityAllocator(rescan_options).allocate(p);
  expect_identical(lazy, rescan);
}

}  // namespace
}  // namespace eta2::alloc
