// Oracle test: the incremental-cache greedy (GreedyState with per-task best
// pairs and selective rescans) must pick exactly the same pairs as a naive
// implementation that recomputes every pair's efficiency each round.
#include <gtest/gtest.h>

#include <vector>

#include "alloc/max_quality.h"
#include "common/rng.h"
#include "stats/normal.h"

namespace eta2::alloc {
namespace {

// Literal Algorithm 1: full O(n·m) efficiency scan per selection.
Allocation naive_greedy(const AllocationProblem& p, const GreedyOptions& opt) {
  const std::size_t n = p.user_count();
  const std::size_t m = p.task_count();
  Allocation a(n, m);
  std::vector<double> remaining = p.user_capacity;
  std::vector<double> miss(m, 1.0);
  double spent = 0.0;
  while (spent < opt.cost_cap) {
    double best = 0.0;
    UserId best_user = n;
    TaskId best_task = m;
    for (UserId i = 0; i < n; ++i) {
      for (TaskId j = 0; j < m; ++j) {
        if (a.is_assigned(i, j)) continue;
        if (remaining[i] < p.task_time[j]) continue;
        const double p_ij =
            stats::accuracy_probability(p.expertise(i, j), opt.epsilon);
        const double gain = p_ij * miss[j];
        const double eff =
            opt.efficiency_per_time ? gain / p.task_time[j] : gain;
        if (eff > best) {
          best = eff;
          best_user = i;
          best_task = j;
        }
      }
    }
    if (best_task == m) break;
    a.assign(best_user, best_task, p.task_time[best_task],
             p.cost_of(best_task));
    remaining[best_user] -= p.task_time[best_task];
    miss[best_task] *=
        1.0 - stats::accuracy_probability(p.expertise(best_user, best_task),
                                          opt.epsilon);
    spent += p.cost_of(best_task);
  }
  return a;
}

bool same_allocation(const Allocation& a, const Allocation& b) {
  if (a.task_count() != b.task_count() || a.user_count() != b.user_count()) {
    return false;
  }
  for (TaskId j = 0; j < a.task_count(); ++j) {
    std::vector<UserId> ua(a.users_of(j).begin(), a.users_of(j).end());
    std::vector<UserId> ub(b.users_of(j).begin(), b.users_of(j).end());
    std::sort(ua.begin(), ua.end());
    std::sort(ub.begin(), ub.end());
    if (ua != ub) return false;
  }
  return true;
}

class GreedyOracleSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(GreedyOracleSweep, MatchesNaiveImplementation) {
  const auto [seed, per_time] = GetParam();
  Rng rng(seed * 101 + 7);
  const std::size_t users = 7;
  const std::size_t tasks = 11;
  AllocationProblem p;
  p.expertise.assign(users, tasks, 0.0);
  for (double& u : p.expertise.data()) u = rng.uniform(0.0, 4.0);
  p.task_time.resize(tasks);
  for (double& t : p.task_time) t = rng.uniform(0.5, 2.5);
  p.user_capacity.resize(users);
  for (double& c : p.user_capacity) c = rng.uniform(2.0, 8.0);

  GreedyOptions options;
  options.efficiency_per_time = per_time;
  Allocation fast(users, tasks);
  greedy_extend(p, options, fast);
  const Allocation naive = naive_greedy(p, options);
  EXPECT_TRUE(same_allocation(fast, naive)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GreedyOracleSweep,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 13),
                       ::testing::Bool()));

TEST(GreedyOracleTest, CostCapMatchesToo) {
  Rng rng(99);
  const std::size_t users = 5;
  const std::size_t tasks = 8;
  AllocationProblem p;
  p.expertise.assign(users, tasks, 0.0);
  for (double& u : p.expertise.data()) u = rng.uniform(0.5, 3.0);
  p.task_time.assign(tasks, 1.0);
  p.task_cost.resize(tasks);
  for (double& c : p.task_cost) c = rng.uniform(0.5, 2.0);
  p.user_capacity.assign(users, 5.0);

  GreedyOptions options;
  options.cost_cap = 6.0;
  Allocation fast(users, tasks);
  greedy_extend(p, options, fast);
  const Allocation naive = naive_greedy(p, options);
  EXPECT_TRUE(same_allocation(fast, naive));
}

}  // namespace
}  // namespace eta2::alloc
