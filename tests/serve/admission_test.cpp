// Admission queue: explicit typed decisions (accepted / overloaded / shed),
// depth and byte caps, the shed watermark, the recovery restore() bypass,
// and close semantics.
#include "serve/admission.h"

#include <gtest/gtest.h>

#include <thread>

#include "serve/health.h"

namespace {

using eta2::serve::Admission;
using eta2::serve::AdmissionQueue;
using eta2::serve::QueuedBatch;
using eta2::serve::ServeHealth;

QueuedBatch make_item(std::uint64_t seq, int priority, std::size_t bytes) {
  QueuedBatch item;
  item.seq = seq;
  item.batch.priority = priority;
  item.bytes = bytes;
  return item;
}

TEST(AdmissionTest, AcceptsUntilDepthCap) {
  ServeHealth health;
  AdmissionQueue::Options options;
  options.max_depth = 3;
  options.shed_watermark = 1.0;  // shedding off
  AdmissionQueue queue(options, &health);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(queue.offer(make_item(i, 1, 10)), Admission::kAccepted);
  }
  EXPECT_EQ(queue.offer(make_item(3, 1, 10)), Admission::kOverloaded);
  EXPECT_EQ(queue.depth(), 3u);
  // Draining one slot readmits.
  ASSERT_TRUE(queue.try_pop().has_value());
  EXPECT_EQ(queue.offer(make_item(3, 1, 10)), Admission::kAccepted);
}

TEST(AdmissionTest, ByteCapRejectsLargeBatch) {
  ServeHealth health;
  AdmissionQueue::Options options;
  options.max_depth = 100;
  options.max_bytes = 100;
  options.shed_watermark = 1.0;
  AdmissionQueue queue(options, &health);
  EXPECT_EQ(queue.offer(make_item(0, 1, 60)), Admission::kAccepted);
  EXPECT_EQ(queue.offer(make_item(1, 1, 60)), Admission::kOverloaded);
  EXPECT_EQ(queue.offer(make_item(1, 1, 40)), Admission::kAccepted);
  EXPECT_EQ(queue.bytes(), 100u);
}

TEST(AdmissionTest, ShedsLowPriorityAboveWatermark) {
  ServeHealth health;
  AdmissionQueue::Options options;
  options.max_depth = 4;
  options.shed_watermark = 0.5;  // watermark at depth 2
  options.shed_priority_threshold = 1;
  AdmissionQueue queue(options, &health);
  EXPECT_EQ(queue.offer(make_item(0, 0, 1)), Admission::kAccepted);
  EXPECT_EQ(queue.offer(make_item(1, 0, 1)), Admission::kAccepted);
  // At the watermark: priority 0 is shed, priority 1 still admitted.
  EXPECT_EQ(queue.offer(make_item(2, 0, 1)), Admission::kShed);
  EXPECT_EQ(queue.offer(make_item(2, 1, 1)), Admission::kAccepted);
  EXPECT_EQ(queue.offer(make_item(3, 1, 1)), Admission::kAccepted);
  // Full: even high priority is overloaded now.
  EXPECT_EQ(queue.offer(make_item(4, 5, 1)), Admission::kOverloaded);
}

TEST(AdmissionTest, AdmitIsPolicyOnlyOfferEnqueues) {
  ServeHealth health;
  AdmissionQueue queue({}, &health);
  EXPECT_EQ(queue.admit(1, 10), Admission::kAccepted);
  EXPECT_EQ(queue.depth(), 0u);  // admit() did not enqueue
  EXPECT_EQ(queue.offer(make_item(0, 1, 10)), Admission::kAccepted);
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(AdmissionTest, RestoreBypassesAdmissionPolicy) {
  ServeHealth health;
  AdmissionQueue::Options options;
  options.max_depth = 1;
  AdmissionQueue queue(options, &health);
  EXPECT_EQ(queue.offer(make_item(0, 1, 1)), Admission::kAccepted);
  EXPECT_EQ(queue.offer(make_item(1, 1, 1)), Admission::kOverloaded);
  // Recovery re-feed: already-accepted batches may exceed the caps.
  queue.restore(make_item(1, 1, 1));
  queue.restore(make_item(2, 0, 1));
  EXPECT_EQ(queue.depth(), 3u);
}

TEST(AdmissionTest, HighWaterMarksRecorded) {
  ServeHealth health;
  AdmissionQueue queue({}, &health);
  EXPECT_EQ(queue.offer(make_item(0, 1, 30)), Admission::kAccepted);
  EXPECT_EQ(queue.offer(make_item(1, 1, 50)), Admission::kAccepted);
  const auto snapshot = health.snapshot();
  EXPECT_EQ(snapshot.queue_depth_high_water, 2u);
  EXPECT_EQ(snapshot.queue_bytes_high_water, 80u);
}

TEST(AdmissionTest, PopDrainsFifoThenBlocksUntilClose) {
  ServeHealth health;
  AdmissionQueue queue({}, &health);
  EXPECT_EQ(queue.offer(make_item(7, 1, 1)), Admission::kAccepted);
  EXPECT_EQ(queue.offer(make_item(8, 1, 1)), Admission::kAccepted);
  auto first = queue.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->seq, 7u);
  auto second = queue.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->seq, 8u);
  EXPECT_EQ(queue.bytes(), 0u);
  // A blocked pop wakes on close and reports drained.
  std::thread closer([&queue] { queue.close(); });
  EXPECT_FALSE(queue.pop().has_value());
  closer.join();
  EXPECT_TRUE(queue.closed());
}

TEST(AdmissionTest, TryPopNonBlocking) {
  ServeHealth health;
  AdmissionQueue queue({}, &health);
  EXPECT_FALSE(queue.try_pop().has_value());
  EXPECT_EQ(queue.offer(make_item(1, 1, 1)), Admission::kAccepted);
  EXPECT_TRUE(queue.try_pop().has_value());
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(AdmissionTest, CloseStillDrainsQueuedItems) {
  ServeHealth health;
  AdmissionQueue queue({}, &health);
  EXPECT_EQ(queue.offer(make_item(1, 1, 1)), Admission::kAccepted);
  queue.close();
  auto item = queue.pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->seq, 1u);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(AdmissionTest, ValidatesOptions) {
  ServeHealth health;
  AdmissionQueue::Options bad;
  bad.max_depth = 0;
  EXPECT_THROW(AdmissionQueue(bad, &health), std::invalid_argument);
  AdmissionQueue::Options watermark;
  watermark.shed_watermark = 1.5;
  EXPECT_THROW(AdmissionQueue(watermark, &health), std::invalid_argument);
  EXPECT_THROW(AdmissionQueue({}, nullptr), std::invalid_argument);
}

}  // namespace
