// SocketServer + BlockingClient end to end on an ephemeral loopback port:
// the four request types, typed errors for bad batches, poisoned-stream
// drops for wire garbage, and the shutdown handshake. The service runs
// with its real step thread here, so TSan sees the full concurrent path.
#include "serve/socket.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "serve/batch.h"
#include "serve/service.h"
#include "serve/wire.h"

namespace {

namespace fs = std::filesystem;
using eta2::serve::BlockingClient;
using eta2::serve::Eta2Service;
using eta2::serve::IngestBatch;
using eta2::serve::Message;
using eta2::serve::MessageType;
using eta2::serve::SocketServer;

std::string sample_batch_bytes(std::uint64_t salt) {
  IngestBatch batch;
  batch.priority = 1;
  for (std::size_t t = 0; t < 2; ++t) {
    eta2::core::NewTask task;
    task.known_domain = (salt + t) % 3;
    batch.tasks.push_back(task);
    for (std::size_t u = 0; u < 3; ++u) {
      batch.observations.push_back(
          {t, u, 5.0 + static_cast<double>((salt + u) % 7)});
    }
  }
  return eta2::serve::serialize_batch(batch);
}

// Polls a health counter until it reaches at least `want` (the server
// counts some events after the response is already on the wire).
template <typename Getter>
bool wait_for_counter(Getter getter, std::uint64_t want) {
  for (int i = 0; i < 200; ++i) {
    if (getter() >= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return getter() >= want;
}

class SocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("eta2_socket_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    Eta2Service::Options options;
    options.dir = (dir_ / "campaign").string();
    options.user_count = 3;
    options.seed = 5;
    service_ = std::make_unique<Eta2Service>(std::move(options));

    SocketServer::Options server_options;
    server_options.io_timeout_ms = 2000;
    server_options.on_shutdown = [this] { shutdown_requested_ = true; };
    server_ = std::make_unique<SocketServer>(service_.get(),
                                             std::move(server_options));
  }

  void TearDown() override {
    server_->stop();
    service_->stop();
    server_.reset();
    service_.reset();
    fs::remove_all(dir_);
  }

  fs::path dir_;
  std::unique_ptr<Eta2Service> service_;
  std::unique_ptr<SocketServer> server_;
  std::atomic<bool> shutdown_requested_{false};
};

TEST_F(SocketTest, IngestQueryHealthSnapshotRoundTrip) {
  BlockingClient client(server_->port());
  const auto accepted =
      client.call(MessageType::kIngest, 1, sample_batch_bytes(1));
  ASSERT_TRUE(accepted.has_value());
  EXPECT_EQ(accepted->type, MessageType::kAccepted);
  EXPECT_EQ(accepted->id, 1u);
  EXPECT_NE(accepted->payload.find("seq 0"), std::string::npos);

  // The step thread commits asynchronously; wait for it through health.
  ASSERT_TRUE(wait_for_counter(
      [this] { return service_->health().snapshot().steps_committed; }, 1));

  const auto result = client.call(MessageType::kQuery, 2, "");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->type, MessageType::kResult);
  EXPECT_NE(result->payload.find("eta2-view v1"), std::string::npos);
  EXPECT_NE(result->payload.find("steps 1"), std::string::npos);

  const auto health = client.call(MessageType::kHealth, 3, "");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->type, MessageType::kHealthReport);
  EXPECT_NE(health->payload.find("\"ingests_offered\":1"),
            std::string::npos);
  EXPECT_NE(health->payload.find("\"accepted\":1"), std::string::npos);

  const auto snapshot = client.call(MessageType::kSnapshot, 4, "");
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->type, MessageType::kSnapshotDone);
  EXPECT_NE(snapshot->payload.find("steps 1"), std::string::npos);
}

TEST_F(SocketTest, BadBatchGetsTypedErrorAndConnectionSurvives) {
  BlockingClient client(server_->port());
  const auto error = client.call(MessageType::kIngest, 1, "not a batch");
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->type, MessageType::kError);
  // The connection is still usable after a request-level error.
  const auto health = client.call(MessageType::kHealth, 2, "");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->type, MessageType::kHealthReport);
  const auto snapshot = service_->health().snapshot();
  EXPECT_EQ(snapshot.ingests_offered, 1u);
  EXPECT_EQ(snapshot.malformed, 1u);
}

TEST_F(SocketTest, HostileBatchCountsGetTypedErrorNotACrash) {
  // A framed batch declaring an absurd element count used to throw
  // length_error/bad_alloc out of parse_batch, escaping the connection
  // thread and std::terminate-ing the daemon. It must be an ordinary
  // malformed request.
  BlockingClient client(server_->port());
  const auto error = client.call(
      MessageType::kIngest, 1,
      "eta2-batch v1\npriority 1\ncapacities 10000000000000000\n");
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->type, MessageType::kError);
  // Connection still usable, server still alive, accounting reconciles.
  const auto health = client.call(MessageType::kHealth, 2, "");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->type, MessageType::kHealthReport);
  const auto snapshot = service_->health().snapshot();
  EXPECT_EQ(snapshot.ingests_offered, 1u);
  EXPECT_EQ(snapshot.malformed, 1u);
}

TEST_F(SocketTest, FinishedConnectionThreadsAreReaped) {
  for (int i = 0; i < 8; ++i) {
    BlockingClient client(server_->port());
    EXPECT_TRUE(client.call(MessageType::kHealth, 1, "").has_value());
  }
  // Each accept reaps connections whose serving thread has exited; poll
  // with fresh probes until the tracked set collapses to the probe itself
  // plus at most a straggler still inside its epilogue.
  bool reaped = false;
  for (int i = 0; i < 200 && !reaped; ++i) {
    BlockingClient probe(server_->port());
    (void)probe.call(MessageType::kHealth, 1, "");
    reaped = server_->tracked_connections() <= 2;
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(reaped);
}

TEST_F(SocketTest, ConcurrentStopIsSafe) {
  // Two racing stop() calls (e.g. explicit stop vs destructor) must both
  // return only after teardown, with exactly one of them joining.
  std::thread a([this] { server_->stop(); });
  std::thread b([this] { server_->stop(); });
  a.join();
  b.join();
  server_->stop();  // still idempotent afterwards
  EXPECT_EQ(server_->tracked_connections(), 0u);
}

TEST_F(SocketTest, WireGarbageDropsConnectionAndCountsProtocolError) {
  BlockingClient garbage(server_->port());
  ASSERT_TRUE(garbage.send_raw("eta2-rpc v9 nonsense 0 0 zzzz\n"));
  // The poisoned stream is terminal: at best the client reads the server's
  // parting kError frame, after which the connection is dead.
  const auto parting = garbage.call(MessageType::kHealth, 1, "");
  if (parting.has_value()) {
    EXPECT_EQ(parting->type, MessageType::kError);
  }
  EXPECT_FALSE(garbage.call(MessageType::kHealth, 2, "").has_value());
  ASSERT_TRUE(wait_for_counter(
      [this] { return service_->health().snapshot().protocol_errors; }, 1));

  // A response type used as a request is also a protocol error.
  BlockingClient confused(server_->port());
  const auto reply = confused.call(MessageType::kResult, 1, "");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MessageType::kError);
  EXPECT_FALSE(confused.call(MessageType::kHealth, 2, "").has_value());
  ASSERT_TRUE(wait_for_counter(
      [this] { return service_->health().snapshot().protocol_errors; }, 2));

  // The server is unharmed: a fresh client works.
  BlockingClient fresh(server_->port());
  const auto health = fresh.call(MessageType::kHealth, 1, "");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->type, MessageType::kHealthReport);
}

TEST_F(SocketTest, MidFrameDisconnectIsCountedNotFatal) {
  {
    BlockingClient torn(server_->port());
    const std::string frame =
        eta2::serve::frame_message(MessageType::kQuery, 1, "ignored");
    ASSERT_TRUE(torn.send_raw(frame.substr(0, frame.size() / 2)));
    torn.close();  // disconnect with half a frame buffered server-side
  }
  ASSERT_TRUE(wait_for_counter(
      [this] { return service_->health().snapshot().connections_dropped; },
      1));
  BlockingClient fresh(server_->port());
  EXPECT_TRUE(fresh.call(MessageType::kHealth, 1, "").has_value());
}

TEST_F(SocketTest, PipelinedRequestsAnswerInOrder) {
  BlockingClient client(server_->port());
  // call() sends one frame and waits; pipelining is exercised by sending
  // three raw frames back to back and then reading responses in order.
  std::string burst;
  burst += eta2::serve::frame_message(MessageType::kHealth, 10, "");
  burst += eta2::serve::frame_message(MessageType::kQuery, 11, "");
  burst += eta2::serve::frame_message(MessageType::kHealth, 12, "");
  ASSERT_TRUE(client.send_raw(burst));
  // Absorb responses through call(): send a 4th request, then check the
  // pending queue order via successive calls.
  const auto first = client.call(MessageType::kHealth, 13, "");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 10u);
  const auto second = client.call(MessageType::kHealth, 14, "");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, 11u);
}

TEST_F(SocketTest, ShutdownHandshake) {
  BlockingClient client(server_->port());
  const auto goodbye = client.call(MessageType::kShutdown, 9, "");
  ASSERT_TRUE(goodbye.has_value());
  EXPECT_EQ(goodbye->type, MessageType::kGoodbye);
  // The goodbye frame is written before on_shutdown fires on the
  // connection thread, so the flag can trail the client's receive.
  EXPECT_TRUE(wait_for_counter(
      [this] { return shutdown_requested_.load() ? 1u : 0u; }, 1));
  // The shutdown connection is closed afterwards.
  EXPECT_FALSE(client.call(MessageType::kHealth, 10, "").has_value());
}

TEST_F(SocketTest, ConcurrentClientsReconcile) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 5;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> ok{0};
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &ok] {
      BlockingClient client(server_->port());
      for (int i = 0; i < kPerClient; ++i) {
        const auto reply = client.call(
            MessageType::kIngest, static_cast<std::uint64_t>(i),
            sample_batch_bytes(static_cast<std::uint64_t>(c * 100 + i)));
        if (reply.has_value()) ++ok;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), static_cast<std::uint64_t>(kClients * kPerClient));
  const auto snapshot = service_->health().snapshot();
  EXPECT_EQ(snapshot.ingests_offered,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(snapshot.accepted + snapshot.rejected_overloaded + snapshot.shed +
                snapshot.malformed,
            snapshot.ingests_offered);
}

}  // namespace
