// Eta2Service in-process: durable ingest -> step -> query, deadline
// cancellation, ledger reconciliation, and stop/reopen recovery of the
// WAL'd backlog. Everything runs in deterministic mode (no step thread, a
// fake clock), so these tests never wait on real time.
#include "serve/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>

#include "serve/batch.h"

namespace {

namespace fs = std::filesystem;
using eta2::serve::Admission;
using eta2::serve::Eta2Service;
using eta2::serve::IngestBatch;

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("eta2_service_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Deterministic service: no step thread, fake clock, no deadlines unless
  // the test turns them on.
  Eta2Service::Options make_options(const std::string& subdir) {
    Eta2Service::Options options;
    options.dir = (dir_ / subdir).string();
    options.user_count = 6;
    options.seed = 11;
    options.start_step_thread = false;
    options.time_source = [this] {
      return eta2::serve::TimePoint(
          std::chrono::milliseconds(fake_ms_.load()));
    };
    options.durable.snapshot_cadence = 4;
    return options;
  }

  static IngestBatch make_batch(std::uint64_t salt, int priority = 1) {
    IngestBatch batch;
    batch.priority = priority;
    for (std::size_t t = 0; t < 3; ++t) {
      eta2::core::NewTask task;
      task.known_domain = (salt + t) % 4;
      task.processing_time = 0.5 + 0.1 * static_cast<double>(t);
      task.cost = 1.0;
      batch.tasks.push_back(task);
      for (std::size_t u = 0; u < 4; ++u) {
        batch.observations.push_back(
            {t, u, 10.0 + static_cast<double>((salt + u) % 5)});
      }
    }
    return batch;
  }

  fs::path dir_;
  std::atomic<std::int64_t> fake_ms_{1};
};

TEST_F(ServiceTest, IngestDrainQuery) {
  Eta2Service service(make_options("campaign"));
  const auto result = service.ingest(make_batch(1));
  EXPECT_EQ(result.decision, Admission::kAccepted);
  EXPECT_EQ(result.seq, 0u);
  EXPECT_EQ(service.queue_depth(), 1u);

  EXPECT_EQ(service.drain(), 1u);
  EXPECT_EQ(service.steps_completed(), 1u);
  const auto view = service.query();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->steps_completed, 1u);
  EXPECT_EQ(view->truth.size(), 3u);
  EXPECT_EQ(view->task_domains.size(), 3u);

  const auto health = service.health().snapshot();
  EXPECT_EQ(health.ingests_offered, 1u);
  EXPECT_EQ(health.accepted, 1u);
  EXPECT_EQ(health.steps_committed, 1u);
  EXPECT_EQ(health.quarantined, 0u);
  service.stop();
}

TEST_F(ServiceTest, InvalidBatchesCountMalformed) {
  Eta2Service service(make_options("campaign"));
  IngestBatch wrong_arity = make_batch(1);
  wrong_arity.user_capacity = {1.0, 2.0};  // user_count is 6
  EXPECT_THROW(service.ingest(std::move(wrong_arity)), std::invalid_argument);
  IngestBatch bad_user = make_batch(2);
  bad_user.observations.push_back({0, 99, 1.0});
  EXPECT_THROW(service.ingest(std::move(bad_user)), std::invalid_argument);
  IngestBatch bad_time = make_batch(3);
  bad_time.tasks[0].processing_time = 0.0;
  EXPECT_THROW(service.ingest(std::move(bad_time)), std::invalid_argument);

  const auto health = service.health().snapshot();
  EXPECT_EQ(health.ingests_offered, 3u);
  EXPECT_EQ(health.malformed, 3u);
  EXPECT_EQ(health.accepted, 0u);
  EXPECT_EQ(service.queue_depth(), 0u);
  service.stop();
}

TEST_F(ServiceTest, LedgerReconcilesUnderOverload) {
  auto options = make_options("campaign");
  options.admission.max_depth = 4;
  options.admission.shed_watermark = 0.25;  // shed priority 0 at depth 1
  options.admission.shed_priority_threshold = 1;
  Eta2Service service(std::move(options));

  std::uint64_t accepted = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t shed = 0;
  for (std::uint64_t i = 0; i < 10; ++i) {
    // Alternate priorities so the shed tier fires too.
    const auto result = service.ingest(make_batch(i, i % 2 == 0 ? 0 : 1));
    if (result.decision == Admission::kAccepted) ++accepted;
    if (result.decision == Admission::kOverloaded) ++overloaded;
    if (result.decision == Admission::kShed) ++shed;
  }
  EXPECT_GT(overloaded, 0u);
  EXPECT_GT(shed, 0u);
  const auto health = service.health().snapshot();
  EXPECT_EQ(health.ingests_offered, 10u);
  EXPECT_EQ(health.accepted +
                health.rejected_overloaded + health.shed + health.malformed,
            health.ingests_offered);
  EXPECT_EQ(health.accepted, accepted);
  // Every accepted batch is runnable after the overload episode.
  EXPECT_EQ(service.drain(), accepted);
  EXPECT_EQ(service.steps_completed(), accepted);
  service.stop();
}

TEST_F(ServiceTest, DeadlineBreachCancelsAndQuarantines) {
  auto options = make_options("campaign");
  options.step_deadline_ms = 10;
  Eta2Service service(std::move(options));

  EXPECT_EQ(service.ingest(make_batch(1)).decision, Admission::kAccepted);
  // The step starts long after its deadline: the watchdog cancels it at
  // the first cooperative cancellation point.
  fake_ms_.store(10'000);
  EXPECT_EQ(service.drain(), 1u);

  const auto health = service.health().snapshot();
  EXPECT_EQ(health.quarantined, 1u);
  EXPECT_EQ(health.timed_out, 1u);
  EXPECT_EQ(health.steps_committed, 0u);
  // The campaign advanced past the quarantined step (journaled skip).
  EXPECT_EQ(service.steps_completed(), 1u);
  // A later batch with a fresh deadline commits normally.
  EXPECT_EQ(service.ingest(make_batch(2)).decision, Admission::kAccepted);
  EXPECT_EQ(service.drain(), 1u);
  EXPECT_EQ(service.health().snapshot().steps_committed, 1u);
  service.stop();
}

TEST_F(ServiceTest, StopReopenRunsWaledBacklog) {
  const std::string campaign = (dir_ / "campaign").string();
  std::string reference_view;
  {
    // Reference: same three batches, fully drained in one life.
    Eta2Service reference(make_options("reference"));
    for (std::uint64_t i = 0; i < 3; ++i) {
      EXPECT_EQ(reference.ingest(make_batch(i)).decision,
                Admission::kAccepted);
    }
    EXPECT_EQ(reference.drain(), 3u);
    reference_view = eta2::serve::serialize_query_view(*reference.query());
    reference.stop();
  }
  {
    Eta2Service service(make_options("campaign"));
    for (std::uint64_t i = 0; i < 3; ++i) {
      EXPECT_EQ(service.ingest(make_batch(i)).decision, Admission::kAccepted);
    }
    // Only one of three accepted batches runs before shutdown.
    EXPECT_EQ(service.drain(1), 1u);
    service.stop();
  }
  {
    // Reopen: the two unrun batches come back from the ingest WAL.
    Eta2Service service(make_options("campaign"));
    EXPECT_EQ(service.steps_completed(), 1u);
    EXPECT_EQ(service.queue_depth(), 2u);
    EXPECT_EQ(service.drain(), 2u);
    EXPECT_EQ(service.steps_completed(), 3u);
    // Bit-identical to the uninterrupted reference.
    EXPECT_EQ(eta2::serve::serialize_query_view(*service.query()),
              reference_view);
    service.stop();
  }
}

TEST_F(ServiceTest, ReopenAssignsFreshSequenceNumbers) {
  {
    Eta2Service service(make_options("campaign"));
    EXPECT_EQ(service.ingest(make_batch(1)).seq, 0u);
    EXPECT_EQ(service.ingest(make_batch(2)).seq, 1u);
    service.drain();
    service.stop();
  }
  {
    Eta2Service service(make_options("campaign"));
    // Past batches are consumed; the next seq continues the step count.
    EXPECT_EQ(service.queue_depth(), 0u);
    EXPECT_EQ(service.ingest(make_batch(3)).seq, 2u);
    EXPECT_EQ(service.drain(), 1u);
    service.stop();
  }
}

TEST_F(ServiceTest, StopIsIdempotentAndDestructorSafe) {
  auto options = make_options("campaign");
  options.start_step_thread = true;  // exercise the real loop + join path
  Eta2Service service(std::move(options));
  EXPECT_EQ(service.ingest(make_batch(1)).decision, Admission::kAccepted);
  service.stop();
  service.stop();  // second stop is a no-op
  // Destructor calls stop() again on an already-stopped service.
}

}  // namespace
