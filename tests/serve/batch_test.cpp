// Ingest batch serialization: bit-exact round trips (the bytes live in the
// ingest WAL and must replay identically) and malformed-input rejection.
#include "serve/batch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace {

using eta2::serve::IngestBatch;
using eta2::serve::parse_batch;
using eta2::serve::serialize_batch;

IngestBatch sample_batch() {
  IngestBatch batch;
  batch.priority = 3;
  batch.user_capacity = {8.0, 0.1 + 0.2, 1e-308};
  eta2::core::NewTask described;
  described.description = "count the crowd\nsecond line";
  described.processing_time = 1.25;
  described.cost = 2.5;
  batch.tasks.push_back(described);
  eta2::core::NewTask labelled;
  labelled.known_domain = 5;
  labelled.processing_time = 0.75;
  labelled.cost = 1.0;
  batch.tasks.push_back(labelled);
  batch.observations.push_back({0, 2, 10.25});
  batch.observations.push_back({1, 0, -3.5});
  return batch;
}

TEST(BatchTest, RoundTripIsBitExact) {
  const IngestBatch batch = sample_batch();
  const std::string bytes = serialize_batch(batch);
  const IngestBatch parsed = parse_batch(bytes);
  EXPECT_EQ(parsed.priority, batch.priority);
  ASSERT_EQ(parsed.user_capacity.size(), batch.user_capacity.size());
  for (std::size_t i = 0; i < batch.user_capacity.size(); ++i) {
    EXPECT_EQ(parsed.user_capacity[i], batch.user_capacity[i]);
  }
  ASSERT_EQ(parsed.tasks.size(), batch.tasks.size());
  EXPECT_EQ(parsed.tasks[0].description, batch.tasks[0].description);
  EXPECT_FALSE(parsed.tasks[0].known_domain.has_value());
  EXPECT_EQ(parsed.tasks[1].known_domain, batch.tasks[1].known_domain);
  ASSERT_EQ(parsed.observations.size(), batch.observations.size());
  EXPECT_EQ(parsed.observations[1].value, batch.observations[1].value);
  // The strongest form: serialize(parse(bytes)) == bytes.
  EXPECT_EQ(serialize_batch(parsed), bytes);
}

TEST(BatchTest, NonFiniteValuesRoundTripByBitPattern) {
  IngestBatch batch;
  eta2::core::NewTask task;
  task.processing_time = 1.0;
  batch.tasks.push_back(task);
  batch.observations.push_back(
      {0, 0, std::numeric_limits<double>::quiet_NaN()});
  batch.observations.push_back(
      {0, 1, std::numeric_limits<double>::infinity()});
  const IngestBatch parsed = parse_batch(serialize_batch(batch));
  EXPECT_TRUE(std::isnan(parsed.observations[0].value));
  EXPECT_TRUE(std::isinf(parsed.observations[1].value));
  EXPECT_EQ(serialize_batch(parsed), serialize_batch(batch));
}

TEST(BatchTest, EmptyBatchRoundTrips) {
  const IngestBatch parsed = parse_batch(serialize_batch(IngestBatch{}));
  EXPECT_EQ(parsed.priority, 1);
  EXPECT_TRUE(parsed.tasks.empty());
  EXPECT_TRUE(parsed.observations.empty());
}

TEST(BatchTest, MalformedInputsThrow) {
  EXPECT_THROW(parse_batch(""), std::invalid_argument);
  EXPECT_THROW(parse_batch("eta2-batch v2\n"), std::invalid_argument);
  EXPECT_THROW(parse_batch("not-a-batch v1\n"), std::invalid_argument);
  EXPECT_THROW(parse_batch("eta2-batch v1\npriority x\n"),
               std::invalid_argument);
  // Truncated mid-structure.
  const std::string bytes = serialize_batch(sample_batch());
  EXPECT_THROW(parse_batch(bytes.substr(0, bytes.size() / 2)),
               std::invalid_argument);
}

TEST(BatchTest, HostileCountsRejectedBeforeAllocation) {
  // A declared count far beyond what the payload could encode must be an
  // invalid_argument (the contract the server catches), not a
  // length_error/bad_alloc out of resize/reserve.
  EXPECT_THROW(
      parse_batch("eta2-batch v1\npriority 1\ncapacities 10000000000000000\n"),
      std::invalid_argument);
  EXPECT_THROW(parse_batch("eta2-batch v1\npriority 1\ncapacities 0\n"
                           "tasks 10000000000000000\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_batch("eta2-batch v1\npriority 1\ncapacities 0\n"
                           "tasks 0\nobservations 10000000000000000\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_batch("eta2-batch v1\npriority 1\ncapacities 0\n"
                           "tasks 1\ntask - 0 0 10000000000000000\n"),
               std::invalid_argument);
}

TEST(BatchTest, ObservationTaskIndexValidated) {
  IngestBatch batch;
  eta2::core::NewTask task;
  task.processing_time = 1.0;
  batch.tasks.push_back(task);
  batch.observations.push_back({7, 0, 1.0});  // no task 7
  EXPECT_THROW(parse_batch(serialize_batch(batch)), std::invalid_argument);
}

}  // namespace
