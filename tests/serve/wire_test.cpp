// eta2-rpc framing: round trips, incremental decoding, and the poisoned
// stream contract — any malformed frame is terminal and diagnosable, never
// silently skipped.
#include "serve/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using eta2::serve::FrameDecoder;
using eta2::serve::Message;
using eta2::serve::MessageType;
using eta2::serve::frame_message;

TEST(WireTest, MessageTypeNamesRoundTrip) {
  for (const MessageType type :
       {MessageType::kIngest, MessageType::kQuery, MessageType::kHealth,
        MessageType::kSnapshot, MessageType::kShutdown,
        MessageType::kAccepted, MessageType::kOverloaded, MessageType::kShed,
        MessageType::kResult, MessageType::kError, MessageType::kHealthReport,
        MessageType::kSnapshotDone, MessageType::kGoodbye}) {
    const auto parsed =
        eta2::serve::parse_message_type(eta2::serve::message_type_name(type));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(eta2::serve::parse_message_type("bogus").has_value());
}

TEST(WireTest, FrameRoundTrip) {
  const std::string frame =
      frame_message(MessageType::kIngest, 42, "hello payload");
  FrameDecoder decoder;
  std::vector<Message> out;
  ASSERT_TRUE(decoder.feed(frame, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, MessageType::kIngest);
  EXPECT_EQ(out[0].id, 42u);
  EXPECT_EQ(out[0].payload, "hello payload");
  EXPECT_FALSE(decoder.corrupt());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(WireTest, EmptyPayloadRoundTrip) {
  FrameDecoder decoder;
  std::vector<Message> out;
  ASSERT_TRUE(decoder.feed(frame_message(MessageType::kQuery, 0, ""), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, MessageType::kQuery);
  EXPECT_TRUE(out[0].payload.empty());
}

TEST(WireTest, PayloadWithNewlinesAndNulBytes) {
  const std::string payload("line1\nline2\0binary\xff tail", 24);
  FrameDecoder decoder;
  std::vector<Message> out;
  ASSERT_TRUE(
      decoder.feed(frame_message(MessageType::kResult, 7, payload), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, payload);
}

TEST(WireTest, IncrementalSingleByteFeed) {
  const std::string frame =
      frame_message(MessageType::kHealth, 9, "incremental");
  FrameDecoder decoder;
  std::vector<Message> out;
  for (const char c : frame) {
    ASSERT_TRUE(decoder.feed(std::string_view(&c, 1), out));
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, "incremental");
}

TEST(WireTest, PipelinedFramesDecodeInOrder) {
  std::string bytes = frame_message(MessageType::kIngest, 1, "a");
  bytes += frame_message(MessageType::kQuery, 2, "");
  bytes += frame_message(MessageType::kSnapshot, 3, "c");
  FrameDecoder decoder;
  std::vector<Message> out;
  ASSERT_TRUE(decoder.feed(bytes, out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[1].id, 2u);
  EXPECT_EQ(out[2].id, 3u);
}

TEST(WireTest, TornFrameStaysBufferedNotCorrupt) {
  const std::string frame = frame_message(MessageType::kIngest, 5, "payload");
  FrameDecoder decoder;
  std::vector<Message> out;
  ASSERT_TRUE(decoder.feed(frame.substr(0, frame.size() / 2), out));
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(decoder.corrupt());
  EXPECT_GT(decoder.buffered_bytes(), 0u);
  // The rest arrives: decodes normally.
  ASSERT_TRUE(decoder.feed(frame.substr(frame.size() / 2), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, "payload");
}

TEST(WireTest, CorruptPayloadPoisonsStream) {
  std::string frame = frame_message(MessageType::kIngest, 5, "payload");
  frame[frame.size() - 1] ^= 0x01;  // flip a payload bit -> CRC mismatch
  FrameDecoder decoder;
  std::vector<Message> out;
  EXPECT_FALSE(decoder.feed(frame, out));
  EXPECT_TRUE(decoder.corrupt());
  EXPECT_NE(decoder.diagnostic().find("CRC"), std::string::npos);
  // Poison is terminal: even a valid frame decodes nothing now.
  EXPECT_FALSE(
      decoder.feed(frame_message(MessageType::kQuery, 1, ""), out));
  EXPECT_TRUE(out.empty());
}

TEST(WireTest, GarbageHeaderPoisonsStream) {
  FrameDecoder decoder;
  std::vector<Message> out;
  EXPECT_FALSE(decoder.feed("eta2-rpc v9 nonsense 0 0 zzzz\nmore", out));
  EXPECT_TRUE(decoder.corrupt());
  EXPECT_TRUE(out.empty());
}

TEST(WireTest, UnknownTypePoisonsStream) {
  FrameDecoder decoder;
  std::vector<Message> out;
  EXPECT_FALSE(decoder.feed("eta2-rpc v1 teleport 1 0 00000000\n", out));
  EXPECT_TRUE(decoder.corrupt());
}

TEST(WireTest, OversizePayloadPoisonsStream) {
  FrameDecoder decoder(16);  // tiny cap
  std::vector<Message> out;
  const std::string frame =
      frame_message(MessageType::kIngest, 1, std::string(64, 'x'));
  EXPECT_FALSE(decoder.feed(frame, out));
  EXPECT_TRUE(decoder.corrupt());
  EXPECT_NE(decoder.diagnostic().find("payload"), std::string::npos);
}

TEST(WireTest, RunawayHeaderWithoutNewlinePoisons) {
  FrameDecoder decoder;
  std::vector<Message> out;
  // A "header" that never terminates must not buffer unboundedly.
  EXPECT_FALSE(decoder.feed(std::string(256, 'a'), out));
  EXPECT_TRUE(decoder.corrupt());
}

}  // namespace
