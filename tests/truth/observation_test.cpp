#include "truth/observation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace eta2::truth {
namespace {

TEST(ObservationSetTest, AddAndQuery) {
  ObservationSet set(3, 2);
  set.add(0, 1, 5.0);
  set.add(0, 2, 7.0);
  set.add(1, 0, 1.0);
  EXPECT_EQ(set.total_observations(), 3u);
  EXPECT_EQ(set.for_task(0).size(), 2u);
  EXPECT_EQ(set.for_task(1).size(), 1u);
  EXPECT_TRUE(set.has_observation(0, 1));
  EXPECT_FALSE(set.has_observation(0, 0));
  EXPECT_EQ(set.tasks_answered(1), 1u);
  EXPECT_EQ(set.tasks_answered(0), 1u);
}

TEST(ObservationSetTest, RejectsDuplicates) {
  ObservationSet set(2, 1);
  set.add(0, 0, 1.0);
  EXPECT_THROW(set.add(0, 0, 2.0), std::invalid_argument);
}

TEST(ObservationSetTest, RejectsOutOfRange) {
  ObservationSet set(2, 2);
  EXPECT_THROW(set.add(2, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(set.add(0, 2, 1.0), std::invalid_argument);
  EXPECT_THROW(set.for_task(2), std::invalid_argument);
  EXPECT_THROW(set.tasks_answered(2), std::invalid_argument);
}

TEST(ObservationSetTest, TaskMeanAndStddev) {
  ObservationSet set(4, 1);
  set.add(0, 0, 2.0);
  set.add(0, 1, 4.0);
  set.add(0, 2, 6.0);
  set.add(0, 3, 8.0);
  EXPECT_DOUBLE_EQ(set.task_mean(0), 5.0);
  EXPECT_DOUBLE_EQ(set.task_stddev(0), std::sqrt(5.0));
}

TEST(ObservationSetTest, StddevZeroForSingleObservation) {
  ObservationSet set(1, 1);
  set.add(0, 0, 3.0);
  EXPECT_DOUBLE_EQ(set.task_stddev(0), 0.0);
}

TEST(ObservationSetTest, MeanOfEmptyTaskThrows) {
  ObservationSet set(1, 1);
  EXPECT_THROW(set.task_mean(0), std::invalid_argument);
}

TEST(ObservationSetTest, EmptySetShape) {
  ObservationSet set(5, 3);
  EXPECT_EQ(set.user_count(), 5u);
  EXPECT_EQ(set.task_count(), 3u);
  EXPECT_EQ(set.total_observations(), 0u);
  EXPECT_TRUE(set.for_task(0).empty());
}

}  // namespace
}  // namespace eta2::truth
