// TrustLedger (truth/trust.h): residual ledger, agreement-graph collusion
// detection, quarantine lifecycle, the kTrimmedV1 filter, and persistence.
// Steps are driven with caller-chosen truth planes (μ, σ) so every z value
// is hand-computable: with unit expertise and σ = 1, z is just the report's
// offset from μ.
#include "truth/trust.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "../core/golden_scenarios.h"
#include "truth/eta2_mle.h"
#include "truth/expertise_store.h"

namespace eta2::truth {
namespace {

constexpr std::size_t kUsers = 6;
constexpr std::size_t kTasks = 4;

// Six users, four unit-σ tasks in one domain; every user reports on every
// task with a fixed per-user offset from the committed truth.
struct Scenario {
  ExpertiseStore store{kUsers, MleOptions{}};
  std::vector<DomainIndex> domains = std::vector<DomainIndex>(kTasks, 0);
  std::vector<double> mu = {10.0, 20.0, 30.0, 40.0};
  std::vector<double> sigma = std::vector<double>(kTasks, 1.0);

  Scenario() { store.add_domain(); }

  ObservationSet observe(const std::vector<double>& offsets) const {
    ObservationSet obs(kUsers, kTasks);
    for (TaskId j = 0; j < kTasks; ++j) {
      for (UserId u = 0; u < kUsers; ++u) {
        obs.add(j, u, mu[j] + offsets[u]);
      }
    }
    return obs;
  }

  TrustStepReport run_step(TrustLedger& ledger,
                           const std::vector<double>& offsets) const {
    const ObservationSet obs = observe(offsets);
    return ledger.end_step(obs, domains, mu, sigma, store);
  }
};

TrustOptions trimmed_options() {
  TrustOptions options;
  options.tier = DefenseTier::kTrimmedV1;
  return options;
}

TEST(TrustLedgerTest, ValidatesOptions) {
  EXPECT_THROW(TrustLedger(0, TrustOptions{}), std::invalid_argument);
  TrustOptions bad;
  bad.decay = 1.5;
  EXPECT_THROW(TrustLedger(2, bad), std::invalid_argument);
  bad = {};
  bad.quarantine_steps = 0;
  EXPECT_THROW(TrustLedger(2, bad), std::invalid_argument);
  bad = {};
  bad.min_clique_size = 1;
  EXPECT_THROW(TrustLedger(2, bad), std::invalid_argument);
  bad = {};
  bad.quarantine_threshold = 0.9;  // above suspect_threshold
  EXPECT_THROW(TrustLedger(2, bad), std::invalid_argument);
}

TEST(TrustLedgerTest, FreshLedgerTrustsEveryone) {
  TrustLedger ledger(kUsers, trimmed_options());
  for (UserId u = 0; u < kUsers; ++u) {
    EXPECT_EQ(ledger.trust(u), 1.0);
    EXPECT_FALSE(ledger.suspected(u));
    EXPECT_FALSE(ledger.quarantined(u));
  }
  const std::vector<char> flags = ledger.quarantine_flags();
  ASSERT_EQ(flags.size(), kUsers);
  for (const char f : flags) EXPECT_EQ(f, 0);
}

TEST(TrustLedgerTest, PersistentPoisonerIsSuspectedThenQuarantined) {
  const Scenario scenario;
  TrustLedger ledger(kUsers, trimmed_options());
  const std::vector<double> poison = {0, 0, 0, 0, 0, 5.0};

  // Step 1: z = 5 on four tasks pushes mean z² to 25 immediately, but the
  // EWMA weight (4 < min_weight 6) is still too thin to convict.
  TrustStepReport report = scenario.run_step(ledger, poison);
  EXPECT_EQ(report.suspected_users, 1u);
  EXPECT_EQ(report.quarantined_users, 0u);
  EXPECT_TRUE(ledger.suspected(5));
  EXPECT_FALSE(ledger.quarantined(5));
  EXPECT_EQ(ledger.trust(0), 1.0) << "honest residuals are free";

  // Step 2: weight 0.8·4 + 4 crosses min_weight; the verdict lands.
  report = scenario.run_step(ledger, poison);
  EXPECT_EQ(report.quarantined_users, 1u);
  EXPECT_TRUE(ledger.quarantined(5));
  EXPECT_EQ(ledger.quarantine_flags()[5], 1);
  // mean z² = 25 → trust exp(−12), pinned in the bottom histogram bucket.
  EXPECT_NEAR(ledger.trust(5), std::exp(-12.0), 1e-9);
  EXPECT_EQ(report.trust_histogram[0], 1u);
  EXPECT_EQ(report.trust_histogram[kTrustHistogramBuckets - 1], 5u);
}

TEST(TrustLedgerTest, QuarantineExpiresOntoProbationAndRelapseReconvicts) {
  const Scenario scenario;
  TrustLedger ledger(kUsers, trimmed_options());
  const std::vector<double> poison = {0, 0, 0, 0, 0, 5.0};
  const std::vector<double> honest = {0, 0, 0, 0, 0, 0};

  scenario.run_step(ledger, poison);
  scenario.run_step(ledger, poison);  // quarantined at step 2 → until step 6
  for (int step = 3; step <= 5; ++step) {
    const TrustStepReport report = scenario.run_step(ledger, honest);
    EXPECT_EQ(report.quarantined_users, 1u) << "released early at " << step;
    EXPECT_EQ(report.readmitted_users, 0u);
  }
  // Step 6: the sentence (quarantine_steps = 3 full steps) is served;
  // re-admission is on probation — trust 1, but thin evidence.
  TrustStepReport report = scenario.run_step(ledger, honest);
  EXPECT_EQ(report.readmitted_users, 1u);
  EXPECT_EQ(report.quarantined_users, 0u);
  EXPECT_FALSE(ledger.quarantined(5));
  EXPECT_EQ(ledger.trust(5), 1.0);

  // Relapse: probation evidence is thin by design, so one more poisoned
  // step re-convicts immediately.
  report = scenario.run_step(ledger, poison);
  EXPECT_EQ(report.quarantined_users, 1u);
  EXPECT_TRUE(ledger.quarantined(5));
}

TEST(TrustLedgerTest, AgreementGraphQuarantinesCliqueBeforeTrustDrains) {
  const Scenario scenario;
  TrustLedger ledger(kUsers, trimmed_options());
  // Users 0–2 collude on the same +5 offset: pairwise co-wrong mass 4
  // (one per task) clears min_co_wrong after ONE step — faster than the
  // individual threshold path, which still lacks min_weight evidence.
  const TrustStepReport report =
      scenario.run_step(ledger, {5.0, 5.0, 5.0, 0, 0, 0});
  EXPECT_EQ(report.flagged_cliques, 1u);
  EXPECT_EQ(report.quarantined_users, 3u);
  for (UserId u = 0; u < 3; ++u) EXPECT_TRUE(ledger.quarantined(u));
  for (UserId u = 3; u < kUsers; ++u) EXPECT_FALSE(ledger.quarantined(u));
}

TEST(TrustLedgerTest, OppositeSignErrorsDoNotFormAClique) {
  const Scenario scenario;
  TrustLedger ledger(kUsers, trimmed_options());
  // Users 0 and 1 err together (+5); user 2 errs alone (−5). The only
  // co-wrong pair is {0, 1} — size 2, below min_clique_size — so honest
  // anti-correlated noise never convicts anyone on step one.
  const TrustStepReport report =
      scenario.run_step(ledger, {5.0, 5.0, -5.0, 0, 0, 0});
  EXPECT_EQ(report.flagged_cliques, 0u);
  EXPECT_EQ(report.quarantined_users, 0u);
}

TEST(TrustLedgerTest, FilterDropsQuarantinedUsersReports) {
  // Hand-built state: user 5 mid-quarantine.
  std::istringstream state(
      "trust-ledger v1\n"
      "6 3\n"
      "0 0 0 0\n0 0 0 0\n0 0 0 0\n0 0 0 0\n0 0 0 0\n"
      "100 4 5 0\n"
      "pairs 0\n");
  const TrustLedger ledger = TrustLedger::load(state, trimmed_options());
  ASSERT_TRUE(ledger.quarantined(5));

  ObservationSet raw(kUsers, 1);
  for (UserId u = 0; u < kUsers; ++u) {
    raw.add(0, u, 10.0 + 0.01 * static_cast<double>(u));
  }
  const std::vector<DomainIndex> domains = {0};
  ExpertiseStore store(kUsers, MleOptions{});
  store.add_domain();
  const TrustFilterResult result =
      ledger.filter(raw, domains, store.snapshot(), Eta2Mle{});
  EXPECT_EQ(result.dropped_quarantined, 1u);
  EXPECT_EQ(result.trimmed_observations, 0u);
  EXPECT_FALSE(result.data.has_observation(0, 5));
  EXPECT_EQ(result.data.total_observations(), 5u);
}

TEST(TrustLedgerTest, FilterTrimsTheLargeResidualAgainstProvisionalTruth) {
  // 10 honest reports at 10.0 and one at 60.0: against the provisional
  // mean the outlier's standardized residual is √10 ≈ 3.16 > trim_min_z
  // while every honest report sits at 1/√10. Budget floor(0.2·11) = 2,
  // but only the one offender qualifies.
  constexpr std::size_t n = 11;
  TrustLedger ledger(n, trimmed_options());
  ObservationSet raw(n, 1);
  for (UserId u = 0; u + 1 < n; ++u) raw.add(0, u, 10.0);
  raw.add(0, n - 1, 60.0);
  const std::vector<DomainIndex> domains = {0};
  ExpertiseStore store(n, MleOptions{});
  store.add_domain();
  const TrustFilterResult result =
      ledger.filter(raw, domains, store.snapshot(), Eta2Mle{});
  EXPECT_EQ(result.trimmed_observations, 1u);
  EXPECT_FALSE(result.data.has_observation(0, n - 1));
  EXPECT_EQ(result.data.total_observations(), n - 1);
}

TEST(TrustLedgerTest, FilterTrimTiesCutTheHigherUserId) {
  // Users 3 and 4 are symmetric outliers (identical |z|); with budget
  // floor(0.2·5) = 1 only one can go, and the tie-break must pick the
  // higher id so the survivor set is deterministic.
  constexpr std::size_t n = 5;
  TrustOptions options = trimmed_options();
  options.trim_min_z = 1.0;  // symmetric outliers inflate σ, z ≈ 1.58
  TrustLedger ledger(n, options);
  ObservationSet raw(n, 1);
  for (UserId u = 0; u < 3; ++u) raw.add(0, u, 20.0);
  raw.add(0, 3, 28.0);
  raw.add(0, 4, 12.0);
  const std::vector<DomainIndex> domains = {0};
  ExpertiseStore store(n, MleOptions{});
  store.add_domain();
  const TrustFilterResult result =
      ledger.filter(raw, domains, store.snapshot(), Eta2Mle{});
  EXPECT_EQ(result.trimmed_observations, 1u);
  EXPECT_TRUE(result.data.has_observation(0, 3));
  EXPECT_FALSE(result.data.has_observation(0, 4));
}

TEST(TrustLedgerTest, FilterNeverTrimsBelowOneSurvivor) {
  constexpr std::size_t n = 3;
  TrustOptions options = trimmed_options();
  options.trim_fraction = 1.0;
  options.trim_min_z = 0.0;  // every report qualifies for the trim
  TrustLedger ledger(n, options);
  ObservationSet raw(n, 1);
  raw.add(0, 0, 0.0);
  raw.add(0, 1, 1.0);
  raw.add(0, 2, 5.0);
  const std::vector<DomainIndex> domains = {0};
  ExpertiseStore store(n, MleOptions{});
  store.add_domain();
  const TrustFilterResult result =
      ledger.filter(raw, domains, store.snapshot(), Eta2Mle{});
  EXPECT_EQ(result.data.total_observations(), 1u);
  EXPECT_EQ(result.trimmed_observations, 2u);
}

TEST(TrustLedgerTest, DiscountExpertiseScalesByTrustWithFloor) {
  // User 1 carries moderate residual mass (mean z² = 3 → trust e^{-1});
  // user 2 is quarantined (hard floor).
  std::istringstream state(
      "trust-ledger v1\n"
      "3 2\n"
      "0 0 0 0\n"
      "12 4 0 0\n"
      "100 4 7 0\n"
      "pairs 0\n");
  const TrustLedger ledger = TrustLedger::load(state, trimmed_options());
  Matrix expertise(3, 2, 2.0);
  ledger.discount_expertise(expertise);
  EXPECT_DOUBLE_EQ(expertise.row(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(expertise.row(1)[0], 2.0 * std::exp(-1.0));
  EXPECT_DOUBLE_EQ(expertise.row(2)[0], 2.0 * 0.1);  // alloc_floor
  EXPECT_DOUBLE_EQ(expertise.row(2)[1], 2.0 * 0.1);
}

TEST(TrustLedgerTest, SaveLoadStepKeepsScoringBitIdentical) {
  const Scenario scenario;
  TrustLedger original(kUsers, trimmed_options());
  // Two steps with a clique and a lone deviant: populates residual mass,
  // the agreement graph, and quarantine cursors.
  scenario.run_step(original, {5.0, 5.0, 5.0, 0, 0, -4.0});
  scenario.run_step(original, {0, 0, 0, 0, 0, -4.0});

  std::ostringstream saved;
  original.save(saved);
  std::istringstream in(saved.str());
  TrustLedger restored = TrustLedger::load(in, trimmed_options());
  EXPECT_EQ(restored.step(), original.step());
  for (UserId u = 0; u < kUsers; ++u) {
    EXPECT_EQ(restored.trust(u), original.trust(u)) << "user " << u;
    EXPECT_EQ(restored.quarantined(u), original.quarantined(u));
  }

  // The real contract: a restored ledger must score the NEXT step exactly
  // like the one that never went down.
  TrustLedger live = original;  // value copy, same baseline
  const TrustStepReport live_report =
      scenario.run_step(live, {5.0, 5.0, 5.0, 0, 0, 0});
  const TrustStepReport restored_report =
      scenario.run_step(restored, {5.0, 5.0, 5.0, 0, 0, 0});
  EXPECT_EQ(live_report.suspected_users, restored_report.suspected_users);
  EXPECT_EQ(live_report.quarantined_users, restored_report.quarantined_users);
  EXPECT_EQ(live_report.readmitted_users, restored_report.readmitted_users);
  EXPECT_EQ(live_report.flagged_cliques, restored_report.flagged_cliques);
  std::ostringstream live_saved;
  std::ostringstream restored_saved;
  live.save(live_saved);
  restored.save(restored_saved);
  EXPECT_EQ(live_saved.str(), restored_saved.str());
}

TEST(TrustLedgerTest, LoadRejectsBadHeaderAndTruncation) {
  TrustOptions options = trimmed_options();
  std::istringstream bad_header("trust-ledger v9\n1 0\n0 0 0 0\npairs 0\n");
  EXPECT_THROW(TrustLedger::load(bad_header, options),
               std::invalid_argument);
  std::istringstream truncated("trust-ledger v1\n2 0\n0 0 0 0\n");
  EXPECT_THROW(TrustLedger::load(truncated, options), std::invalid_argument);
}

TEST(TrustLedgerTest, NeutralLedgerTrustedUpdateMatchesPlainDynamicUpdate) {
  // With every trust at 1 and the influence cap above expertise_max, the
  // effective expertise IS the raw expertise — the trusted sweep must be
  // bit-identical to truth::dynamic_update, not merely close.
  const Scenario scenario;
  TrustOptions options = trimmed_options();
  options.influence_cap = 1e9;
  const TrustLedger ledger(kUsers, options);
  const ObservationSet data =
      scenario.observe({-0.3, 0.2, -0.1, 0.4, 0.0, 0.25});

  ExpertiseStore plain_store = scenario.store;
  ExpertiseStore trusted_store = scenario.store;
  const Eta2Mle mle;
  const DynamicUpdateResult plain =
      dynamic_update(plain_store, data, scenario.domains, 0.8, mle);
  const DynamicUpdateResult trusted = ledger.trusted_dynamic_update(
      trusted_store, data, scenario.domains, 0.8, mle);
  ASSERT_EQ(plain.mu.size(), trusted.mu.size());
  EXPECT_EQ(plain.iterations, trusted.iterations);
  for (TaskId j = 0; j < plain.mu.size(); ++j) {
    EXPECT_EQ(plain.mu[j], trusted.mu[j]) << "task " << j;
    EXPECT_EQ(plain.sigma[j], trusted.sigma[j]) << "task " << j;
  }
  EXPECT_EQ(plain_store.snapshot(), trusted_store.snapshot());
}

TEST(TrustLedgerTest, DistrustedUserLosesInfluenceOnTheTruth) {
  // User 5 reports +8 off-truth on every task. A ledger that already
  // distrusts them must land the truth estimate closer to the honest
  // consensus than the plain update does.
  const Scenario scenario;
  std::istringstream state(
      "trust-ledger v1\n"
      "6 2\n"
      "0 0 0 0\n0 0 0 0\n0 0 0 0\n0 0 0 0\n0 0 0 0\n"
      "81 4 0 0\n"
      "pairs 0\n");
  const TrustLedger ledger = TrustLedger::load(state, trimmed_options());
  const ObservationSet data =
      scenario.observe({0.1, -0.1, 0.05, -0.05, 0.0, 8.0});

  ExpertiseStore plain_store = scenario.store;
  ExpertiseStore trusted_store = scenario.store;
  const Eta2Mle mle;
  const DynamicUpdateResult plain =
      dynamic_update(plain_store, data, scenario.domains, 0.8, mle);
  const DynamicUpdateResult trusted = ledger.trusted_dynamic_update(
      trusted_store, data, scenario.domains, 0.8, mle);
  for (TaskId j = 0; j < scenario.mu.size(); ++j) {
    EXPECT_LT(std::abs(trusted.mu[j] - scenario.mu[j]),
              std::abs(plain.mu[j] - scenario.mu[j]))
        << "task " << j;
  }
}

// The kTrimmedV1 pinned transcript (referenced from truth/trust.h): the
// labeled golden scenario with the defenses on. Captured once from the
// build that introduced DefenseTier::kTrimmedV1 — hexfloat truth/sigma,
// full allocation order, and the save blob with its trust-ledger trailer.
// Any change to the defended estimation path (filter order, trim
// tie-breaks, the trusted sweep, ledger persistence) must either reproduce
// these bytes or ship as a new tier with its own transcript.

constexpr const char* kTrimmedV1_transcript =
    R"GOLD(step 0 warmup=1 mle_iters=1 data_iters=1 cost=0x1.18p+5
domains: 0 1 2 0 1
alloc: 0:4,0,3,1,5,2 1:1,4,0,2,3,5 2:1,4,3 3:5,0,4,3,2 4:1,5,0,2
truth: 0x1.47ff93d49939ap+3 0x1.992b241549a9dp+3 0x1.04a4c8be876c8p+4 0x1.2c82fcd266907p+4 0x1.61149bada7b25p+4
sigma: 0x1.c216cfb05dd24p-3 0x1.afb355227bbc7p-3 0x1.92f13ee8c2997p-4 0x1.f2ecb3ac56b96p-3 0x1.7486897feb66ep-3
step 1 warmup=0 mle_iters=2 data_iters=1 cost=0x1.1p+5
domains: 1 2 0 1 2
alloc: 0:1,4,3,5,2,0 1:4,1,2,5,0,3 2:4,1,3,2 3:1,3,5,0 4:4,2,5,0
truth: 0x1.6345b71eeaa4bp+3 0x1.bd9af73fb9ad8p+3 0x1.166789c24876dp+4 0x1.3e926f21d87cdp+4 0x1.70d26f92681a3p+4
sigma: 0x1.7c8393915db8fp-2 0x1.74b04b9e3434ap-2 0x1.2f5e7b8f25febp-3 0x1.f9f8b31f0a512p-3 0x1.206077b494222p-2
step 2 warmup=0 mle_iters=2 data_iters=1 cost=0x1.1p+5
domains: 2 0 1 2 0
alloc: 0:4,0,1,3,2,5 1:1,4,2,0,3,5 2:3,1,2,0 3:4,0,3,5 4:1,4,2,5
truth: 0x1.7bc267c9e1609p+3 0x1.e35d27394efe1p+3 0x1.24d44bead3136p+4 0x1.56b31c67dc64fp+4 0x1.800c74be10a67p+4
sigma: 0x1.66a16dd1b5761p-2 0x1.5408e438c56c1p-2 0x1.7887848abdab1p-3 0x1.6a4b677ec081p-4 0x1.a62c70941c332p-2
)GOLD";

constexpr const char* kTrimmedV1_saved = R"GOLD(eta2-server v1
1
expertise-store v1
6 3
1.25 2.5 2
2.75 2 1.75
2.75 2 2
2 1.25 2.75
2.5 0.75 3.25
2.5 1.5 3
3.7674635698983026 2.8629114159088047 3.2934407565763
2.503333963436034 0.5646386975366299 1.7309687456079583
0.39335720373513494 3.9566820752403005 1.4201875182548742
2.626528262728198 0.42273542429369615 4.108103309115151
2.765594788864072 0.6506101568436986 2.1349317840693063
3.17813917249551 3.9509354688244582 2.677853567462035
dynamic-clusterer v1
0.5 0 0 0 0
0
3
0 0
1 1
2 2
trust-ledger v1
6 3
9.119746807278036 8.120000000000001 0 0
7.036964770923964 8.96 0 0
6.364304200212012 9.120000000000001 0 0
7.960830957674897 8.760000000000002 0 0
7.926516026187706 8.96 0 0
9.606040555503258 9.760000000000002 0 0
pairs 0
)GOLD";

constexpr const char* kTrimmedV1_post =
    R"GOLD(step 3 warmup=0 mle_iters=2 data_iters=1 cost=0x1.1p+5
domains: 0 1 2 0 1
alloc: 0:2,1,4,5,3,0 1:1,3,4,0,2,5 2:4,2,5,0 3:2,1,5,3 4:1,3,4,0
truth: 0x1.96a5cf08fb274p+3 0x1.04660f9ef9282p+4 0x1.2ed504f8b4d87p+4 0x1.64aa18b0a3cebp+4 0x1.8cc725802445dp+4
sigma: 0x1.c66ad672ce024p-3 0x1.82a12ed9ee008p-3 0x1.abae0685bdcd6p-3 0x1.92c4fc7e9a6d5p-3 0x1.5376207f35db8p-2
)GOLD";

TEST(TrustLedgerTest, TrimmedV1GoldenTranscriptBitIdentical) {
  core::Eta2Config config;
  config.trust.tier = DefenseTier::kTrimmedV1;
  const eta2::testing::GoldenRun run =
      eta2::testing::run_labeled_scenario(config);
  EXPECT_EQ(run.transcript, kTrimmedV1_transcript);
  EXPECT_EQ(run.saved, kTrimmedV1_saved);
  EXPECT_EQ(run.post, kTrimmedV1_post);
}

}  // namespace
}  // namespace eta2::truth
