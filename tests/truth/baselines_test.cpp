#include "truth/baselines.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace eta2::truth {
namespace {

// Shared scenario: a panel of users with distinct noise levels answering
// many tasks; good users (low noise) should earn higher reliability under
// every iterative method, and every method should beat the plain mean.
class BaselineScenario : public ::testing::Test {
 protected:
  static constexpr std::size_t kUsers = 12;
  static constexpr std::size_t kTasks = 120;

  void SetUp() override {
    Rng rng(21);
    data_ = std::make_unique<ObservationSet>(kUsers, kTasks);
    truth_.resize(kTasks);
    for (std::size_t j = 0; j < kTasks; ++j) {
      truth_[j] = rng.uniform(0.0, 50.0);
      for (std::size_t i = 0; i < kUsers; ++i) {
        data_->add(j, i, rng.normal(truth_[j], noise(i)));
      }
    }
  }

  // Users 0..5 precise (σ=0.5), users 6..11 noisy (σ=5).
  static double noise(std::size_t user) { return user < 6 ? 0.5 : 5.0; }

  double mean_abs_error(const std::vector<double>& estimates) const {
    double sum = 0.0;
    for (std::size_t j = 0; j < kTasks; ++j) {
      sum += std::fabs(estimates[j] - truth_[j]);
    }
    return sum / static_cast<double>(kTasks);
  }

  void expect_good_users_ranked_higher(const TruthResult& r) const {
    for (std::size_t good = 0; good < 6; ++good) {
      for (std::size_t bad = 6; bad < kUsers; ++bad) {
        EXPECT_GT(r.reliability[good], r.reliability[bad])
            << "good user " << good << " vs bad user " << bad;
      }
    }
  }

  std::unique_ptr<ObservationSet> data_;
  std::vector<double> truth_;
};

TEST_F(BaselineScenario, MeanBaselineMatchesTaskMeans) {
  const MeanBaseline method;
  const TruthResult r = method.estimate(*data_);
  for (std::size_t j = 0; j < kTasks; ++j) {
    EXPECT_DOUBLE_EQ(r.truth[j], data_->task_mean(j));
  }
  for (const double w : r.reliability) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST_F(BaselineScenario, HubsAuthoritiesRanksGoodUsersHigher) {
  const HubsAuthorities method;
  const TruthResult r = method.estimate(*data_);
  EXPECT_TRUE(r.converged);
  expect_good_users_ranked_higher(r);
}

TEST_F(BaselineScenario, AverageLogRanksGoodUsersHigher) {
  const AverageLog method;
  const TruthResult r = method.estimate(*data_);
  EXPECT_TRUE(r.converged);
  expect_good_users_ranked_higher(r);
}

TEST_F(BaselineScenario, TruthFinderRanksGoodUsersHigher) {
  const TruthFinder method;
  const TruthResult r = method.estimate(*data_);
  EXPECT_TRUE(r.converged);
  expect_good_users_ranked_higher(r);
}

TEST_F(BaselineScenario, IterativeMethodsBeatThePlainMean) {
  const double mean_err = mean_abs_error(MeanBaseline().estimate(*data_).truth);
  EXPECT_LT(mean_abs_error(HubsAuthorities().estimate(*data_).truth), mean_err);
  EXPECT_LT(mean_abs_error(AverageLog().estimate(*data_).truth), mean_err);
  EXPECT_LT(mean_abs_error(TruthFinder().estimate(*data_).truth), mean_err);
}

TEST_F(BaselineScenario, ReliabilityScoresAreBounded) {
  const TruthResult ha = HubsAuthorities().estimate(*data_);
  const TruthResult al = AverageLog().estimate(*data_);
  const TruthResult tf = TruthFinder().estimate(*data_);
  for (std::size_t i = 0; i < kUsers; ++i) {
    EXPECT_GE(ha.reliability[i], 0.0);
    EXPECT_LE(ha.reliability[i], 1.0);
    EXPECT_GE(al.reliability[i], 0.0);
    EXPECT_LE(al.reliability[i], 1.0);
    EXPECT_GE(tf.reliability[i], 0.0);
    EXPECT_LT(tf.reliability[i], 1.0);
  }
}

TEST(BaselineEdgeCases, EmptyTasksYieldNaN) {
  ObservationSet data(2, 2);
  data.add(0, 0, 5.0);
  const TruthResult mean_r = MeanBaseline().estimate(data);
  EXPECT_FALSE(std::isnan(mean_r.truth[0]));
  EXPECT_TRUE(std::isnan(mean_r.truth[1]));
  const TruthResult ha = HubsAuthorities().estimate(data);
  EXPECT_TRUE(std::isnan(ha.truth[1]));
  const TruthResult tf = TruthFinder().estimate(data);
  EXPECT_TRUE(std::isnan(tf.truth[1]));
  const TruthResult al = AverageLog().estimate(data);
  EXPECT_TRUE(std::isnan(al.truth[1]));
}

TEST(BaselineEdgeCases, SingleObservationTask) {
  ObservationSet data(1, 1);
  data.add(0, 0, 3.0);
  EXPECT_DOUBLE_EQ(MeanBaseline().estimate(data).truth[0], 3.0);
  EXPECT_DOUBLE_EQ(HubsAuthorities().estimate(data).truth[0], 3.0);
  EXPECT_DOUBLE_EQ(AverageLog().estimate(data).truth[0], 3.0);
  EXPECT_DOUBLE_EQ(TruthFinder().estimate(data).truth[0], 3.0);
}

TEST(BaselineEdgeCases, UserWithNoObservationsKeepsZeroWeight) {
  ObservationSet data(3, 2);
  data.add(0, 0, 1.0);
  data.add(0, 1, 2.0);
  data.add(1, 0, 3.0);
  data.add(1, 1, 4.0);
  // User 2 never reports.
  const TruthResult r = HubsAuthorities().estimate(data);
  EXPECT_DOUBLE_EQ(r.reliability[2], 0.0);
}

TEST(BaselineEdgeCases, IterationCapRespected) {
  Rng rng(5);
  ObservationSet data(6, 30);
  for (std::size_t j = 0; j < 30; ++j) {
    for (std::size_t i = 0; i < 6; ++i) {
      data.add(j, i, rng.uniform(0.0, 100.0));
    }
  }
  BaselineOptions options;
  options.max_iterations = 2;
  options.convergence_threshold = 0.0;  // never converges
  const TruthResult r = TruthFinder(options).estimate(data);
  EXPECT_EQ(r.iterations, 2);
}

TEST(BaselineEdgeCases, NamesAreStable) {
  EXPECT_EQ(MeanBaseline().name(), "Baseline");
  EXPECT_EQ(MedianBaseline().name(), "Median");
  EXPECT_EQ(HubsAuthorities().name(), "Hubs and Authorities");
  EXPECT_EQ(AverageLog().name(), "Average-Log");
  EXPECT_EQ(TruthFinder().name(), "TruthFinder");
}

TEST(MedianBaselineTest, OddAndEvenCounts) {
  ObservationSet data(4, 2);
  data.add(0, 0, 1.0);
  data.add(0, 1, 100.0);
  data.add(0, 2, 3.0);
  data.add(1, 0, 2.0);
  data.add(1, 1, 4.0);
  const TruthResult r = MedianBaseline().estimate(data);
  EXPECT_DOUBLE_EQ(r.truth[0], 3.0);   // odd: middle value
  EXPECT_DOUBLE_EQ(r.truth[1], 3.0);   // even: midpoint
}

TEST(MedianBaselineTest, ResistsOutliers) {
  Rng rng(31);
  ObservationSet data(9, 60);
  std::vector<double> mu(60);
  for (std::size_t j = 0; j < 60; ++j) {
    mu[j] = rng.uniform(0.0, 50.0);
    for (std::size_t i = 0; i < 9; ++i) {
      // Two of nine users fabricate wildly biased values.
      const double value =
          i < 2 ? mu[j] + 40.0 : rng.normal(mu[j], 1.0);
      data.add(j, i, value);
    }
  }
  const double median_err = [&] {
    const TruthResult r = MedianBaseline().estimate(data);
    double sum = 0.0;
    for (std::size_t j = 0; j < 60; ++j) sum += std::fabs(r.truth[j] - mu[j]);
    return sum;
  }();
  const double mean_err = [&] {
    const TruthResult r = MeanBaseline().estimate(data);
    double sum = 0.0;
    for (std::size_t j = 0; j < 60; ++j) sum += std::fabs(r.truth[j] - mu[j]);
    return sum;
  }();
  EXPECT_LT(median_err, 0.5 * mean_err);
}

TEST(MedianBaselineTest, EmptyTaskIsNaN) {
  ObservationSet data(1, 1);
  const TruthResult r = MedianBaseline().estimate(data);
  EXPECT_TRUE(std::isnan(r.truth[0]));
}

}  // namespace
}  // namespace eta2::truth
