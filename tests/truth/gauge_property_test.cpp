// Property tests of the model's invariances (DESIGN.md §5):
//  * data-scale equivariance: scaling every observation by c scales μ̂ and σ̂
//    by c and leaves the (anchored) expertise estimates unchanged;
//  * data-shift equivariance: shifting every observation shifts μ̂ only.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "truth/eta2_mle.h"

namespace eta2::truth {
namespace {

struct Fixture {
  ObservationSet data{0, 0};
  std::vector<DomainIndex> domain;
};

Fixture make_fixture(std::uint64_t seed, double scale, double shift) {
  Rng rng(seed);
  Fixture f;
  const std::size_t users = 12;
  const std::size_t tasks = 50;
  f.data = ObservationSet(users, tasks);
  f.domain.assign(tasks, 0);
  for (std::size_t j = 0; j < tasks; ++j) {
    f.domain[j] = j % 3;
    const double mu = rng.uniform(0.0, 20.0);
    for (std::size_t i = 0; i < users; ++i) {
      const double u = 0.4 + 0.2 * static_cast<double>(i);
      const double x = rng.normal(mu, 1.5 / u);
      f.data.add(j, i, scale * x + shift);
    }
  }
  return f;
}

class GaugeSweep : public ::testing::TestWithParam<double> {};

TEST_P(GaugeSweep, DataScaleEquivariance) {
  const double c = GetParam();
  const Eta2Mle mle;
  const Fixture base = make_fixture(11, 1.0, 0.0);
  const Fixture scaled = make_fixture(11, c, 0.0);
  const MleResult r1 = mle.estimate(base.data, base.domain, 3);
  const MleResult r2 = mle.estimate(scaled.data, scaled.domain, 3);
  for (std::size_t j = 0; j < r1.mu.size(); ++j) {
    EXPECT_NEAR(r2.mu[j], c * r1.mu[j], 1e-6 * (std::fabs(c * r1.mu[j]) + 1.0));
    EXPECT_NEAR(r2.sigma[j], c * r1.sigma[j],
                1e-6 * (std::fabs(c * r1.sigma[j]) + 1.0));
  }
  for (std::size_t i = 0; i < r1.expertise.size(); ++i) {
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_NEAR(r2.expertise[i][k], r1.expertise[i][k],
                  1e-6 * (r1.expertise[i][k] + 1.0));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, GaugeSweep, ::testing::Values(2.0, 10.0, 0.5));

TEST(GaugeTest, DataShiftApproximatelyMovesOnlyTruth) {
  // The fixed-point equations are exactly shift-equivariant, but the
  // paper's convergence rule ("all truth estimates change < 5%") is
  // RELATIVE, so shifting the data shrinks relative changes and the
  // iteration may stop a step earlier/later. Equivariance therefore holds
  // only up to the convergence tolerance, which is what we assert.
  const double shift = 100.0;
  const Eta2Mle mle;
  const Fixture base = make_fixture(13, 1.0, 0.0);
  const Fixture shifted = make_fixture(13, 1.0, shift);
  const MleResult r1 = mle.estimate(base.data, base.domain, 3);
  const MleResult r2 = mle.estimate(shifted.data, shifted.domain, 3);
  for (std::size_t j = 0; j < r1.mu.size(); ++j) {
    EXPECT_NEAR(r2.mu[j], r1.mu[j] + shift, 0.5);
    // σ̂ of a single task is the least stable quantity under early
    // stopping; the tight-convergence test below pins the exact behavior.
    EXPECT_NEAR(r2.sigma[j], r1.sigma[j], 0.5 * (r1.sigma[j] + 0.2));
  }
  // Expertise, like σ̂, is sensitive to how many iterations ran before the
  // relative stopping rule fired; only the ordering is stable. Check that
  // the user ranking within each domain is preserved.
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t a = 0; a < r1.expertise.size(); ++a) {
      for (std::size_t b = a + 1; b < r1.expertise.size(); ++b) {
        const double d1 = r1.expertise[a][k] - r1.expertise[b][k];
        const double d2 = r2.expertise[a][k] - r2.expertise[b][k];
        if (std::fabs(d1) > 0.7) {
          EXPECT_GT(d1 * d2, 0.0) << "rank flip: users " << a << "," << b
                                  << " domain " << k;
        }
      }
    }
  }
}

TEST(GaugeTest, ShiftIsExactWithTightConvergence) {
  // Driving the relative threshold down restores (near-)exact shift
  // equivariance — confirming the deviation above comes from the stopping
  // rule, not the update equations.
  const double shift = 100.0;
  MleOptions options;
  options.convergence_threshold = 1e-10;
  options.max_iterations = 3000;
  const Eta2Mle mle(options);
  const Fixture base = make_fixture(13, 1.0, 0.0);
  const Fixture shifted = make_fixture(13, 1.0, shift);
  const MleResult r1 = mle.estimate(base.data, base.domain, 3);
  const MleResult r2 = mle.estimate(shifted.data, shifted.domain, 3);
  for (std::size_t j = 0; j < r1.mu.size(); ++j) {
    EXPECT_NEAR(r2.mu[j], r1.mu[j] + shift, 1e-3);
  }
}

}  // namespace
}  // namespace eta2::truth
