#include "truth/expertise_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>

#include "common/rng.h"

namespace eta2::truth {
namespace {

MleOptions no_prior_options() {
  MleOptions o;
  o.prior_strength = 0.0;  // make sqrt(N/D) exact for hand computations
  o.anchor_mean = 0.0;
  return o;
}

TEST(ExpertiseStoreTest, InitialExpertiseForUnseenPairs) {
  ExpertiseStore store(3, MleOptions{});
  store.add_domain();
  EXPECT_DOUBLE_EQ(store.expertise(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(store.expertise(2, 0), 1.0);
}

TEST(ExpertiseStoreTest, AddDomainGrowsDenseIndex) {
  ExpertiseStore store(2, MleOptions{});
  EXPECT_EQ(store.add_domain(), 0u);
  EXPECT_EQ(store.add_domain(), 1u);
  EXPECT_EQ(store.domain_count(), 2u);
}

TEST(ExpertiseStoreTest, AccumulateComputesEq9) {
  ExpertiseStore store(1, no_prior_options());
  store.add_domain();
  // N=4 observations with total squared normalized error 1.0 => u = 2.
  Accumulators num{{4.0}};
  Accumulators den{{1.0}};
  store.decay_and_accumulate(1.0, num, den);
  EXPECT_NEAR(store.expertise(0, 0), 2.0, 1e-6);
}

TEST(ExpertiseStoreTest, DecayHalvesHistory) {
  ExpertiseStore store(1, no_prior_options());
  store.add_domain();
  store.decay_and_accumulate(1.0, {{4.0}}, {{4.0}});  // u = 1
  // α=0.5 then add N=2, D=0.25: u = sqrt((2+2)/(2+0.25)) = sqrt(4/2.25)
  store.decay_and_accumulate(0.5, {{2.0}}, {{0.25}});
  EXPECT_NEAR(store.expertise(0, 0), std::sqrt(4.0 / 2.25), 1e-6);
}

TEST(ExpertiseStoreTest, AlphaZeroForgetsHistory) {
  ExpertiseStore store(1, no_prior_options());
  store.add_domain();
  store.decay_and_accumulate(1.0, {{100.0}}, {{1.0}});
  store.decay_and_accumulate(0.0, {{1.0}}, {{1.0}});
  EXPECT_NEAR(store.expertise(0, 0), 1.0, 1e-6);
}

TEST(ExpertiseStoreTest, PriorShrinksSmallSamples) {
  MleOptions with_prior;
  with_prior.prior_strength = 1.0;
  ExpertiseStore store(1, with_prior);
  store.add_domain();
  // One perfect observation: without the prior u would hit the max clamp;
  // with it u = sqrt((1+1)/(0+1)) = sqrt(2).
  store.decay_and_accumulate(1.0, {{1.0}}, {{0.0}});
  EXPECT_NEAR(store.expertise(0, 0), std::sqrt(2.0), 1e-6);
}

TEST(ExpertiseStoreTest, ClampsApplied) {
  MleOptions options = no_prior_options();
  options.expertise_min = 0.5;
  options.expertise_max = 3.0;
  ExpertiseStore store(2, options);
  store.add_domain();
  store.decay_and_accumulate(1.0, {{100.0}, {1.0}}, {{0.0001}, {10000.0}});
  EXPECT_DOUBLE_EQ(store.expertise(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(store.expertise(1, 0), 0.5);
}

TEST(ExpertiseStoreTest, MergeFoldsAccumulators) {
  ExpertiseStore store(1, no_prior_options());
  store.add_domain();
  store.add_domain();
  store.decay_and_accumulate(1.0, {{4.0, 9.0}}, {{1.0, 1.0}});
  store.merge_domains(0, 1);
  // Combined: N=13, D=2 => u = sqrt(6.5)
  EXPECT_NEAR(store.expertise(0, 0), std::sqrt(6.5), 1e-6);
  // Absorbed domain resets to the no-data state.
  EXPECT_DOUBLE_EQ(store.expertise(0, 1), 1.0);
}

TEST(ExpertiseStoreTest, MergeRejectsBadIndices) {
  ExpertiseStore store(1, MleOptions{});
  store.add_domain();
  EXPECT_THROW(store.merge_domains(0, 0), std::invalid_argument);
  EXPECT_THROW(store.merge_domains(0, 1), std::invalid_argument);
}

TEST(ExpertiseStoreTest, SnapshotMatchesExpertise) {
  ExpertiseStore store(2, MleOptions{});
  store.add_domain();
  store.add_domain();
  store.decay_and_accumulate(1.0, {{4.0, 0.0}, {1.0, 2.0}},
                             {{1.0, 0.0}, {4.0, 1.0}});
  const auto snap = store.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_DOUBLE_EQ(snap[i][k], store.expertise(i, k));
    }
  }
}

TEST(ExpertiseStoreTest, AnchorPinsGeometricMean) {
  MleOptions options = no_prior_options();
  ExpertiseStore store(2, options);
  store.add_domain();
  // u values 4 and 1 => geometric mean 2; anchoring to 1 divides both by 2.
  store.decay_and_accumulate(1.0, {{16.0}, {16.0}}, {{1.0}, {16.0}});
  EXPECT_NEAR(store.expertise(0, 0), 4.0, 1e-6);
  const double c = store.anchor(1.0);
  EXPECT_NEAR(c, 2.0, 1e-6);
  EXPECT_NEAR(store.expertise(0, 0), 2.0, 1e-6);
  EXPECT_NEAR(store.expertise(1, 0), 0.5, 1e-6);
}

TEST(ExpertiseStoreTest, AnchorOnEmptyStoreIsNoop) {
  ExpertiseStore store(2, MleOptions{});
  store.add_domain();
  EXPECT_DOUBLE_EQ(store.anchor(1.0), 1.0);
}

TEST(ExpertiseStoreTest, RejectsShapeMismatches) {
  ExpertiseStore store(2, MleOptions{});
  store.add_domain();
  EXPECT_THROW(store.decay_and_accumulate(1.5, {{1.0}, {1.0}}, {{1.0}, {1.0}}),
               std::invalid_argument);
  EXPECT_THROW(store.decay_and_accumulate(0.5, {{1.0}}, {{1.0}}),
               std::invalid_argument);
  EXPECT_THROW(store.expertise(2, 0), std::invalid_argument);
  EXPECT_THROW(store.expertise(0, 1), std::invalid_argument);
}

TEST(ContributionsTest, CountsAndErrors) {
  ObservationSet data(2, 2);
  data.add(0, 0, 12.0);  // μ=10, σ=2 => e=1
  data.add(0, 1, 10.0);  // e=0
  data.add(1, 0, 16.0);  // μ=10, σ=3 => e=2
  const std::vector<DomainIndex> domain{0, 1};
  const std::vector<double> mu{10.0, 10.0};
  const std::vector<double> sigma{2.0, 3.0};
  const Contributions c =
      expertise_contributions(data, domain, mu, sigma, 2, 2);
  EXPECT_DOUBLE_EQ(c.num[0][0], 1.0);
  EXPECT_DOUBLE_EQ(c.den[0][0], 1.0);
  EXPECT_DOUBLE_EQ(c.num[1][0], 1.0);
  EXPECT_DOUBLE_EQ(c.den[1][0], 0.0);
  EXPECT_DOUBLE_EQ(c.num[0][1], 1.0);
  EXPECT_DOUBLE_EQ(c.den[0][1], 4.0);
  EXPECT_DOUBLE_EQ(c.num[1][1], 0.0);
}

TEST(ContributionsTest, SkipsNaNTruth) {
  ObservationSet data(1, 1);
  data.add(0, 0, 5.0);
  const std::vector<DomainIndex> domain{0};
  const std::vector<double> mu{std::nan("")};
  const std::vector<double> sigma{1.0};
  const Contributions c =
      expertise_contributions(data, domain, mu, sigma, 1, 1);
  EXPECT_DOUBLE_EQ(c.num[0][0], 0.0);
}

TEST(DynamicUpdateTest, LearnsExpertiseFromNewTasks) {
  Rng rng(3);
  const std::size_t users = 10;
  const std::size_t tasks = 40;
  ExpertiseStore store(users, MleOptions{});
  store.add_domain();
  // Good users (even ids, u=3) vs bad users (odd ids, u=0.5).
  ObservationSet data(users, tasks);
  std::vector<DomainIndex> domain(tasks, 0);
  for (std::size_t j = 0; j < tasks; ++j) {
    const double mu = rng.uniform(0.0, 10.0);
    for (std::size_t i = 0; i < users; ++i) {
      const double u = i % 2 == 0 ? 3.0 : 0.5;
      data.add(j, i, rng.normal(mu, 1.0 / u));
    }
  }
  const Eta2Mle mle;
  const DynamicUpdateResult r = dynamic_update(store, data, domain, 0.5, mle);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.mu.size(), tasks);
  // Every even user must out-rank every odd user.
  for (std::size_t even = 0; even < users; even += 2) {
    for (std::size_t odd = 1; odd < users; odd += 2) {
      EXPECT_GT(store.expertise(even, 0), store.expertise(odd, 0));
    }
  }
}

TEST(DynamicUpdateTest, DecayShiftsTowardRecentBehavior) {
  // A user who was bad historically but reports precisely today should
  // recover, and recover faster with a smaller α (stronger decay). The
  // panel includes several steady users so the truth estimate is anchored
  // independently of the recovering user's weight.
  std::map<double, double> recovered;  // alpha -> expertise after update
  for (const double alpha : {0.9, 0.1}) {
    const std::size_t users = 6;
    ExpertiseStore store(users, MleOptions{});
    store.add_domain();
    Accumulators num(users, std::vector<double>(1, 10.0));
    Accumulators den(users, std::vector<double>(1, 10.0));  // steady u = 1
    den[0][0] = 90.0;  // user 0 was bad: u = sqrt(11/91) with the prior
    store.decay_and_accumulate(1.0, num, den);
    const double before = store.expertise(0, 0);
    // New day: user 0 is now the most precise reporter.
    Rng rng(7);
    ObservationSet data(users, 20);
    std::vector<DomainIndex> domain(20, 0);
    for (std::size_t j = 0; j < 20; ++j) {
      const double mu = rng.uniform(0.0, 10.0);
      data.add(j, 0, rng.normal(mu, 0.05));
      for (std::size_t i = 1; i < users; ++i) {
        data.add(j, i, rng.normal(mu, 1.0));
      }
    }
    const Eta2Mle mle;
    dynamic_update(store, data, domain, alpha, mle);
    EXPECT_GT(store.expertise(0, 0), before) << "alpha=" << alpha;
    recovered[alpha] = store.expertise(0, 0);
  }
  EXPECT_GT(recovered[0.1], recovered[0.9]);
}

TEST(DynamicUpdateTest, RejectsUserCountMismatch) {
  ExpertiseStore store(2, MleOptions{});
  store.add_domain();
  ObservationSet data(3, 1);
  const Eta2Mle mle;
  const std::vector<DomainIndex> domain{0};
  EXPECT_THROW(dynamic_update(store, data, domain, 0.5, mle),
               std::invalid_argument);
}

}  // namespace
}  // namespace eta2::truth
