// Unit tests for domain-sharded truth execution (DESIGN.md §12): shard-plan
// and CSR-slice structure, plus the central kExact contract — the sharded
// entry points are bit-identical to the monolithic reference for any shard
// layout. kDomainLocalV1 is checked for its own (weaker) guarantees.
#include "truth/sharding.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "truth/eta2_mle.h"
#include "truth/expertise_store.h"

namespace eta2::truth {
namespace {

struct Model {
  std::vector<double> mu;
  std::vector<DomainIndex> domain;
  ObservationSet data{0, 0};
};

Model make_model(std::size_t users, std::size_t tasks, std::size_t domains,
                 std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  m.mu.resize(tasks);
  m.domain.resize(tasks);
  m.data = ObservationSet(users, tasks);
  for (std::size_t j = 0; j < tasks; ++j) {
    m.mu[j] = rng.uniform(0.0, 20.0);
    m.domain[j] = j % domains;
    for (std::size_t i = 0; i < users; ++i) {
      if ((i + j) % 5 == 0) continue;  // leave holes in the matrix
      m.data.add(j, i, rng.normal(m.mu[j], 1.0 / rng.uniform(0.4, 3.0)));
    }
  }
  return m;
}

void expect_bitwise(const std::vector<double>& a, const std::vector<double>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << what;
  }
}

void expect_bitwise(const std::vector<std::vector<double>>& a,
                    const std::vector<std::vector<double>>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) expect_bitwise(a[i], b[i], what);
}

TEST(ShardPlanTest, DefaultGivesOneShardPerDomain) {
  const std::vector<DomainIndex> domain = {2, 0, 1, 0, 2};
  const ShardPlan plan = ShardPlan::build(domain, 3, 0);
  ASSERT_EQ(plan.shard_count(), 3u);
  EXPECT_EQ(plan.domains[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(plan.domains[1], (std::vector<std::size_t>{1}));
  EXPECT_EQ(plan.domains[2], (std::vector<std::size_t>{2}));
  EXPECT_EQ(plan.tasks[0], (std::vector<TaskId>{1, 3}));
  EXPECT_EQ(plan.tasks[1], (std::vector<TaskId>{2}));
  EXPECT_EQ(plan.tasks[2], (std::vector<TaskId>{0, 4}));
  EXPECT_EQ(plan.domain_shard, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ShardPlanTest, FoldsDomainsModuloShardCount) {
  const std::vector<DomainIndex> domain = {0, 1, 2, 3, 4};
  const ShardPlan plan = ShardPlan::build(domain, 5, 2);
  ASSERT_EQ(plan.shard_count(), 2u);
  EXPECT_EQ(plan.domains[0], (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(plan.domains[1], (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(plan.tasks[0], (std::vector<TaskId>{0, 2, 4}));
  EXPECT_EQ(plan.tasks[1], (std::vector<TaskId>{1, 3}));
}

TEST(ShardPlanTest, MoreShardsThanDomainsLeavesEmptyShards) {
  const std::vector<DomainIndex> domain = {0, 0, 1};
  const ShardPlan plan = ShardPlan::build(domain, 2, 8);
  ASSERT_EQ(plan.shard_count(), 8u);
  EXPECT_EQ(plan.tasks[0], (std::vector<TaskId>{0, 1}));
  EXPECT_EQ(plan.tasks[1], (std::vector<TaskId>{2}));
  for (std::size_t s = 2; s < 8; ++s) {
    EXPECT_TRUE(plan.tasks[s].empty()) << s;
    EXPECT_TRUE(plan.domains[s].empty()) << s;
  }
}

TEST(ShardPlanTest, ZeroDomainsStillYieldsOneShard) {
  const ShardPlan plan = ShardPlan::build({}, 0, 0);
  EXPECT_EQ(plan.shard_count(), 1u);
  EXPECT_TRUE(plan.tasks[0].empty());
}

TEST(ShardPlanTest, RejectsOutOfRangeDomainLabel) {
  const std::vector<DomainIndex> domain = {0, 3};
  EXPECT_THROW(ShardPlan::build(domain, 2, 0), std::invalid_argument);
}

TEST(ShardedObservationsTest, SlicesAreAscendingAndComplete) {
  const Model m = make_model(6, 12, 3, 99);
  const ShardPlan plan = ShardPlan::build(m.domain, 3, 2);
  const ShardedObservations sliced(m.data, m.domain, plan);
  ASSERT_EQ(sliced.shard_count(), 2u);
  ASSERT_EQ(sliced.user_count(), 6u);
  std::size_t total = 0;
  for (std::size_t s = 0; s < 2; ++s) {
    for (UserId i = 0; i < 6; ++i) {
      TaskId prev = 0;
      bool first = true;
      for (const auto& e : sliced.slice(s, i)) {
        EXPECT_EQ(plan.domain_shard[m.domain[e.task]], s);
        if (!first) {
          EXPECT_LE(prev, e.task);  // ascending tasks
        }
        prev = e.task;
        first = false;
        ++total;
      }
    }
  }
  EXPECT_EQ(total, m.data.total_observations());
}

TEST(ShardedEstimateTest, ExactTierBitIdenticalToMonolithic) {
  const Model m = make_model(8, 20, 5, 17);
  const Eta2Mle mle;
  const MleResult reference = mle.estimate(m.data, m.domain, 5);
  for (const std::size_t shards : {std::size_t{0}, std::size_t{1},
                                   std::size_t{2}, std::size_t{8}}) {
    const ShardPlan plan = ShardPlan::build(m.domain, 5, shards);
    const MleResult sharded = sharded_estimate(mle, m.data, m.domain, 5, plan,
                                               ShardingTier::kExact);
    expect_bitwise(reference.mu, sharded.mu, "mu");
    expect_bitwise(reference.sigma, sharded.sigma, "sigma");
    expect_bitwise(reference.expertise, sharded.expertise, "expertise");
    EXPECT_EQ(reference.iterations, sharded.iterations) << shards;
    EXPECT_EQ(reference.converged, sharded.converged) << shards;
  }
}

TEST(ShardedEstimateTest, FillsShardTimingStats) {
  const Model m = make_model(4, 9, 3, 5);
  const Eta2Mle mle;
  const ShardPlan plan = ShardPlan::build(m.domain, 3, 0);
  ShardStageStats stats;
  (void)sharded_estimate(mle, m.data, m.domain, 3, plan, ShardingTier::kExact,
                         {}, &stats);
  ASSERT_EQ(stats.shard_ns.size(), 3u);
  for (const double ns : stats.shard_ns) EXPECT_GE(ns, 0.0);
}

TEST(ShardedDynamicUpdateTest, ExactTierBitIdenticalToMonolithic) {
  const Model warm = make_model(8, 20, 5, 21);
  const Eta2Mle mle;
  for (const std::size_t shards : {std::size_t{0}, std::size_t{1},
                                   std::size_t{2}, std::size_t{8}}) {
    // Two independent stores driven through the same warm-up so the sharded
    // and monolithic updates start from identical accumulators.
    ExpertiseStore mono(8);
    ExpertiseStore shard_store(8);
    for (int d = 0; d < 5; ++d) {
      (void)mono.add_domain();
      (void)shard_store.add_domain();
    }
    const MleResult fit = mle.estimate(warm.data, warm.domain, 5);
    const Contributions seed = expertise_contributions(
        warm.data, warm.domain, fit.mu, fit.sigma, 8, 5);
    mono.decay_and_accumulate(1.0, seed.num, seed.den);
    shard_store.decay_and_accumulate(1.0, seed.num, seed.den);

    const Model next = make_model(8, 14, 5, 22);
    const DynamicUpdateResult reference =
        dynamic_update(mono, next.data, next.domain, 0.5, mle);
    const ShardPlan plan = ShardPlan::build(next.domain, 5, shards);
    const DynamicUpdateResult sharded = sharded_dynamic_update(
        shard_store, next.data, next.domain, 0.5, mle, plan,
        ShardingTier::kExact);
    expect_bitwise(reference.mu, sharded.mu, "mu");
    expect_bitwise(reference.sigma, sharded.sigma, "sigma");
    EXPECT_EQ(reference.iterations, sharded.iterations) << shards;
    EXPECT_EQ(reference.converged, sharded.converged) << shards;
    expect_bitwise(mono.snapshot(), shard_store.snapshot(), "store");
  }
}

TEST(ShardedEstimateTest, DomainLocalTierConvergesAndIsShardStable) {
  const Model m = make_model(8, 20, 5, 31);
  const Eta2Mle mle;
  // Same layout run twice must agree bitwise (determinism), and the
  // one-shard plan must reproduce kExact's global loop exactly.
  const ShardPlan one = ShardPlan::build(m.domain, 5, 1);
  const MleResult local_one = sharded_estimate(mle, m.data, m.domain, 5, one,
                                               ShardingTier::kDomainLocalV1);
  const MleResult exact = sharded_estimate(mle, m.data, m.domain, 5, one,
                                           ShardingTier::kExact);
  expect_bitwise(exact.mu, local_one.mu, "one-shard local == exact mu");
  const ShardPlan plan = ShardPlan::build(m.domain, 5, 0);
  const MleResult a = sharded_estimate(mle, m.data, m.domain, 5, plan,
                                       ShardingTier::kDomainLocalV1);
  const MleResult b = sharded_estimate(mle, m.data, m.domain, 5, plan,
                                       ShardingTier::kDomainLocalV1);
  expect_bitwise(a.mu, b.mu, "repeat run mu");
  expect_bitwise(a.expertise, b.expertise, "repeat run expertise");
  EXPECT_TRUE(a.converged);
  for (const double v : a.mu) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace eta2::truth
