#include "truth/variance_em.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "truth/baselines.h"

namespace eta2::truth {
namespace {

TEST(VarianceEmTest, SingleObservationTask) {
  ObservationSet data(1, 1);
  data.add(0, 0, 7.0);
  const TruthResult r = VarianceEm().estimate(data);
  EXPECT_DOUBLE_EQ(r.truth[0], 7.0);
}

TEST(VarianceEmTest, EmptyTaskIsNaN) {
  ObservationSet data(2, 2);
  data.add(0, 0, 1.0);
  const TruthResult r = VarianceEm().estimate(data);
  EXPECT_TRUE(std::isnan(r.truth[1]));
}

TEST(VarianceEmTest, PrecisionWeightsFavorLowNoiseUsers) {
  Rng rng(3);
  const std::size_t users = 10;
  const std::size_t tasks = 150;
  ObservationSet data(users, tasks);
  std::vector<double> mu(tasks);
  for (std::size_t j = 0; j < tasks; ++j) {
    mu[j] = rng.uniform(0.0, 50.0);
    for (std::size_t i = 0; i < users; ++i) {
      const double noise = i < 5 ? 0.5 : 4.0;
      data.add(j, i, rng.normal(mu[j], noise));
    }
  }
  const TruthResult r = VarianceEm().estimate(data);
  EXPECT_TRUE(r.converged);
  for (std::size_t good = 0; good < 5; ++good) {
    for (std::size_t bad = 5; bad < users; ++bad) {
      EXPECT_GT(r.reliability[good], r.reliability[bad]);
    }
  }
  // And it must beat the plain mean on this Gaussian data.
  const TruthResult mean_r = MeanBaseline().estimate(data);
  double em_err = 0.0;
  double mean_err = 0.0;
  for (std::size_t j = 0; j < tasks; ++j) {
    em_err += std::fabs(r.truth[j] - mu[j]);
    mean_err += std::fabs(mean_r.truth[j] - mu[j]);
  }
  EXPECT_LT(em_err, mean_err);
}

TEST(VarianceEmTest, PriorPreventsDegenerateWeights) {
  // One user with a single (by chance perfect) report must not dominate.
  ObservationSet data(3, 2);
  data.add(0, 0, 10.0);
  data.add(0, 1, 12.0);
  data.add(0, 2, 10.9);
  data.add(1, 1, 13.0);
  data.add(1, 2, 11.1);
  const TruthResult r = VarianceEm().estimate(data);
  // Reliabilities stay finite and normalized.
  for (const double w : r.reliability) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(VarianceEmTest, IterationCapRespected) {
  Rng rng(9);
  ObservationSet data(4, 20);
  for (std::size_t j = 0; j < 20; ++j) {
    for (std::size_t i = 0; i < 4; ++i) {
      data.add(j, i, rng.uniform(0.0, 100.0));
    }
  }
  VarianceEmOptions options;
  options.max_iterations = 2;
  options.convergence_threshold = 0.0;
  const TruthResult r = VarianceEm(options).estimate(data);
  EXPECT_EQ(r.iterations, 2);
  EXPECT_FALSE(r.converged);
}

TEST(VarianceEmTest, NameIsStable) {
  EXPECT_EQ(VarianceEm().name(), "Gaussian EM");
}

}  // namespace
}  // namespace eta2::truth
