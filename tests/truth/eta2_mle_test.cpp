#include "truth/eta2_mle.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/rng.h"

namespace eta2::truth {
namespace {

// Builds a synthetic observation set following the paper's model
// x_ij ~ N(μ_j, (σ_j/u_ij)²) with known parameters.
struct Model {
  std::vector<std::vector<double>> expertise;  // [user][domain]
  std::vector<double> mu;
  std::vector<double> sigma;
  std::vector<DomainIndex> domain;
  ObservationSet data{0, 0};
};

Model make_model(std::size_t users, std::size_t tasks, std::size_t domains,
                 std::uint64_t seed, double u_lo = 0.4, double u_hi = 3.0) {
  Rng rng(seed);
  Model m;
  m.expertise.assign(users, std::vector<double>(domains, 1.0));
  for (auto& row : m.expertise) {
    for (double& u : row) u = rng.uniform(u_lo, u_hi);
  }
  m.mu.resize(tasks);
  m.sigma.resize(tasks);
  m.domain.resize(tasks);
  m.data = ObservationSet(users, tasks);
  for (std::size_t j = 0; j < tasks; ++j) {
    m.mu[j] = rng.uniform(0.0, 20.0);
    m.sigma[j] = rng.uniform(0.5, 3.0);
    m.domain[j] = j % domains;
    for (std::size_t i = 0; i < users; ++i) {
      const double u = m.expertise[i][m.domain[j]];
      m.data.add(j, i, rng.normal(m.mu[j], m.sigma[j] / u));
    }
  }
  return m;
}

TEST(Eta2MleTest, RejectsBadOptions) {
  MleOptions bad;
  bad.convergence_threshold = 0.0;
  EXPECT_THROW(Eta2Mle{bad}, std::invalid_argument);
  bad = MleOptions{};
  bad.max_iterations = 0;
  EXPECT_THROW(Eta2Mle{bad}, std::invalid_argument);
  bad = MleOptions{};
  bad.expertise_min = 0.0;
  EXPECT_THROW(Eta2Mle{bad}, std::invalid_argument);
  bad = MleOptions{};
  bad.expertise_max = 0.01;  // below expertise_min
  EXPECT_THROW(Eta2Mle{bad}, std::invalid_argument);
}

TEST(Eta2MleTest, SingleTaskStartsAtMeanStaysInRange) {
  // Iteration 0 uses uniform expertise (the plain mean); the fixed point
  // re-weights users by their residuals but must stay inside the data
  // range.
  ObservationSet data(3, 1);
  data.add(0, 0, 2.0);
  data.add(0, 1, 4.0);
  data.add(0, 2, 9.0);
  const Eta2Mle mle;
  const std::vector<DomainIndex> domain{0};
  // First truth-only pass with u = 1 everywhere is exactly the mean.
  std::vector<double> mu;
  std::vector<double> sigma;
  const std::vector<std::vector<double>> uniform(3, std::vector<double>(1, 1.0));
  mle.estimate_truth_only(data, domain, uniform, mu, sigma);
  EXPECT_NEAR(mu[0], 5.0, 1e-12);
  // The joint fixed point remains within the observed range.
  const MleResult r = mle.estimate(data, domain, 1);
  EXPECT_GE(r.mu[0], 2.0);
  EXPECT_LE(r.mu[0], 9.0);
}

TEST(Eta2MleTest, TaskWithoutDataIsNaN) {
  ObservationSet data(2, 2);
  data.add(0, 0, 3.0);
  const Eta2Mle mle;
  const std::vector<DomainIndex> domain{0, 0};
  const MleResult r = mle.estimate(data, domain, 1);
  EXPECT_FALSE(std::isnan(r.mu[0]));
  EXPECT_TRUE(std::isnan(r.mu[1]));
  EXPECT_TRUE(std::isnan(r.sigma[1]));
}

TEST(Eta2MleTest, NanObservationsDoNotPoisonEstimates) {
  // Regression: a single NaN x_ij used to propagate through the Eq. 5/6
  // sums and turn every estimate for the task's domain into NaN. Non-finite
  // observations must be skipped, leaving the remaining data to speak.
  const Model m = make_model(12, 20, 3, /*seed=*/42);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Poison one report on every 4th task.
  ObservationSet data(12, 20);
  for (std::size_t j = 0; j < 20; ++j) {
    for (const auto& o : m.data.for_task(j)) {
      const bool poison = j % 4 == 0 && o.user == m.data.for_task(j)[0].user;
      data.add(j, o.user, poison ? nan : o.value);
    }
  }
  const Eta2Mle mle;
  const MleResult r = mle.estimate(data, m.domain, 3);
  for (std::size_t j = 0; j < 20; ++j) {
    EXPECT_TRUE(std::isfinite(r.mu[j])) << "task " << j;
    EXPECT_TRUE(std::isfinite(r.sigma[j])) << "task " << j;
  }
  for (const auto& row : r.expertise) {
    for (const double u : row) EXPECT_TRUE(std::isfinite(u));
  }
}

TEST(Eta2MleTest, AllNanTaskStaysNanWithoutPoisoningOthers) {
  Model m = make_model(10, 12, 2, /*seed=*/43);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Task 0 has ONLY non-finite reports: no usable data, so its truth must
  // stay NaN — but its domain-mates keep finite estimates and no user's
  // expertise becomes NaN.
  ObservationSet data(10, 12);
  for (std::size_t j = 0; j < 12; ++j) {
    for (const auto& o : m.data.for_task(j)) {
      data.add(j, o.user, j == 0 ? nan : o.value);
    }
  }
  const Eta2Mle mle;
  const MleResult r = mle.estimate(data, m.domain, 2);
  EXPECT_TRUE(std::isnan(r.mu[0]));
  for (std::size_t j = 1; j < 12; ++j) {
    EXPECT_TRUE(std::isfinite(r.mu[j])) << "task " << j;
  }
  for (const auto& row : r.expertise) {
    for (const double u : row) EXPECT_TRUE(std::isfinite(u));
  }
}

TEST(Eta2MleTest, RecoverseTruthBetterThanMean) {
  const Model m = make_model(30, 60, 3, /*seed=*/5);
  const Eta2Mle mle;
  const MleResult r = mle.estimate(m.data, m.domain, 3);
  EXPECT_TRUE(r.converged);
  double mle_err = 0.0;
  double mean_err = 0.0;
  for (std::size_t j = 0; j < m.mu.size(); ++j) {
    mle_err += std::fabs(r.mu[j] - m.mu[j]) / m.sigma[j];
    mean_err += std::fabs(m.data.task_mean(j) - m.mu[j]) / m.sigma[j];
  }
  EXPECT_LT(mle_err, mean_err);
}

TEST(Eta2MleTest, ExpertiseOrderingIsRecovered) {
  // Users with higher true expertise should receive higher estimates.
  const Model m = make_model(12, 200, 1, /*seed=*/7, 0.4, 3.0);
  const Eta2Mle mle;
  const MleResult r = mle.estimate(m.data, m.domain, 1);
  // Rank correlation between estimated and true expertise (domain 0).
  int concordant = 0;
  int discordant = 0;
  for (std::size_t a = 0; a < 12; ++a) {
    for (std::size_t b = a + 1; b < 12; ++b) {
      const double dt = m.expertise[a][0] - m.expertise[b][0];
      const double de = r.expertise[a][0] - r.expertise[b][0];
      if (dt * de > 0) {
        ++concordant;
      } else if (dt * de < 0) {
        ++discordant;
      }
    }
  }
  EXPECT_GT(concordant, 3 * discordant);
}

TEST(Eta2MleTest, GaugeAnchorPinsGeometricMean) {
  const Model m = make_model(10, 50, 2, /*seed=*/9);
  MleOptions options;
  options.anchor_mean = 1.0;
  const Eta2Mle mle(options);
  const MleResult r = mle.estimate(m.data, m.domain, 2);
  double log_sum = 0.0;
  int count = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t k = 0; k < 2; ++k) {
      log_sum += std::log(r.expertise[i][k]);
      ++count;
    }
  }
  // Clamping can nudge the mean slightly; it must still be close to 1.
  EXPECT_NEAR(std::exp(log_sum / count), 1.0, 0.15);
}

TEST(Eta2MleTest, TruthInvariantUnderInitialExpertiseScale) {
  // The truth estimate must not depend on the gauge of the warm start.
  const Model m = make_model(10, 40, 2, /*seed=*/11);
  const Eta2Mle mle;
  std::vector<std::vector<double>> init(10, std::vector<double>(2, 1.0));
  const MleResult a = mle.estimate(m.data, m.domain, 2, init);
  for (auto& row : init) {
    for (double& u : row) u = 3.0;
  }
  const MleResult b = mle.estimate(m.data, m.domain, 2, init);
  for (std::size_t j = 0; j < m.mu.size(); ++j) {
    EXPECT_NEAR(a.mu[j], b.mu[j], 0.05 * (std::fabs(a.mu[j]) + 1.0));
  }
}

TEST(Eta2MleTest, ExpertiseIsClamped) {
  // One perfect observer (x == μ exactly): without clamps u would explode.
  ObservationSet data(2, 2);
  data.add(0, 0, 5.0);
  data.add(0, 1, 5.0);
  data.add(1, 0, 5.0);
  data.add(1, 1, 7.0);
  MleOptions options;
  options.expertise_max = 4.0;
  options.anchor_mean = 0.0;  // disable to test the raw clamp
  const Eta2Mle mle(options);
  const std::vector<DomainIndex> domain{0, 0};
  const MleResult r = mle.estimate(data, domain, 1);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_LE(r.expertise[i][0], 4.0);
    EXPECT_GE(r.expertise[i][0], options.expertise_min);
  }
}

TEST(Eta2MleTest, IterationsBoundedAndReported) {
  const Model m = make_model(8, 30, 2, /*seed=*/13);
  MleOptions options;
  options.max_iterations = 3;
  options.convergence_threshold = 1e-9;  // force the cap to bind
  const Eta2Mle mle(options);
  const MleResult r = mle.estimate(m.data, m.domain, 2);
  EXPECT_EQ(r.iterations, 3);
  EXPECT_FALSE(r.converged);
}

TEST(Eta2MleTest, RejectsShapeMismatches) {
  ObservationSet data(2, 2);
  const Eta2Mle mle;
  const std::vector<DomainIndex> wrong_size{0};
  EXPECT_THROW(mle.estimate(data, wrong_size, 1), std::invalid_argument);
  const std::vector<DomainIndex> bad_domain{0, 5};
  EXPECT_THROW(mle.estimate(data, bad_domain, 1), std::invalid_argument);
}

TEST(Eta2MleTest, EstimateTruthOnlyMatchesClosedForm) {
  ObservationSet data(2, 1);
  data.add(0, 0, 10.0);
  data.add(0, 1, 20.0);
  std::vector<std::vector<double>> expertise = {{2.0}, {1.0}};
  const Eta2Mle mle;
  std::vector<double> mu;
  std::vector<double> sigma;
  const std::vector<DomainIndex> domain{0};
  mle.estimate_truth_only(data, domain, expertise, mu, sigma);
  // μ = (4·10 + 1·20)/5 = 12; σ² = (4·4 + 1·64)/2 = 40
  EXPECT_NEAR(mu[0], 12.0, 1e-12);
  EXPECT_NEAR(sigma[0], std::sqrt(40.0), 1e-12);
}

// Property sweep: the shrinkage prior pulls small-sample expertise toward
// the prior monotonically — stronger prior, stronger pull.
class PriorStrengthSweep : public ::testing::TestWithParam<double> {};

TEST_P(PriorStrengthSweep, StrongerPriorShrinksSpread) {
  const double prior = GetParam();
  const Model m = make_model(10, 30, 1, /*seed=*/23, 0.3, 3.0);
  MleOptions options;
  options.prior_strength = prior;
  options.anchor_mean = 0.0;  // isolate the prior's effect
  const Eta2Mle mle(options);
  const MleResult r = mle.estimate(m.data, m.domain, 1);
  // Spread of log-expertise across users.
  double log_sum = 0.0;
  for (std::size_t i = 0; i < 10; ++i) log_sum += std::log(r.expertise[i][0]);
  const double log_mean = log_sum / 10.0;
  double var = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    const double dv = std::log(r.expertise[i][0]) - log_mean;
    var += dv * dv;
  }
  // Record into a shared map keyed by prior; the comparison test below
  // cannot see across parameterized cases, so assert a coarse absolute
  // bound instead: spread shrinks below the no-prior case's floor as the
  // prior dominates.
  // Each user holds ~30 observations here, so the prior only dominates
  // once it clearly outweighs that sample size.
  if (prior >= 64.0) {
    EXPECT_LT(var / 10.0, 0.08) << "heavy prior must nearly flatten spread";
  } else {
    EXPECT_GT(var / 10.0, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Priors, PriorStrengthSweep,
                         ::testing::Values(0.0, 0.5, 1.0, 4.0, 16.0, 64.0));

TEST(Eta2MleTest, PriorShrinkageIsMonotone) {
  const Model m = make_model(10, 30, 1, /*seed=*/23, 0.3, 3.0);
  double prev_spread = 1e18;
  for (const double prior : {0.0, 1.0, 4.0, 16.0, 64.0}) {
    MleOptions options;
    options.prior_strength = prior;
    options.anchor_mean = 0.0;
    const Eta2Mle mle(options);
    const MleResult r = mle.estimate(m.data, m.domain, 1);
    double log_sum = 0.0;
    for (std::size_t i = 0; i < 10; ++i) log_sum += std::log(r.expertise[i][0]);
    const double log_mean = log_sum / 10.0;
    double var = 0.0;
    for (std::size_t i = 0; i < 10; ++i) {
      const double dv = std::log(r.expertise[i][0]) - log_mean;
      var += dv * dv;
    }
    EXPECT_LE(var, prev_spread * 1.05) << "prior " << prior;
    prev_spread = var;
  }
}

// Property sweep: accuracy improves as more users observe each task.
class MleUserCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MleUserCountSweep, ErrorShrinksWithUsers) {
  const std::size_t users = GetParam();
  const Model m = make_model(users, 80, 2, /*seed=*/17);
  const Eta2Mle mle;
  const MleResult r = mle.estimate(m.data, m.domain, 2);
  double err = 0.0;
  for (std::size_t j = 0; j < m.mu.size(); ++j) {
    err += std::fabs(r.mu[j] - m.mu[j]) / m.sigma[j];
  }
  err /= static_cast<double>(m.mu.size());
  // Loose per-size bound: ~C/sqrt(users).
  EXPECT_LT(err, 2.5 / std::sqrt(static_cast<double>(users)));
}

INSTANTIATE_TEST_SUITE_P(UserCounts, MleUserCountSweep,
                         ::testing::Values<std::size_t>(4, 8, 16, 32, 64));

}  // namespace
}  // namespace eta2::truth
