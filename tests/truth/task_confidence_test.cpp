#include "truth/task_confidence.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace eta2::truth {
namespace {

struct Fit {
  ObservationSet data{0, 0};
  std::vector<DomainIndex> domain;
  std::vector<double> mu_true;
  MleResult result;
};

Fit make_fit(std::size_t users, std::size_t tasks, std::uint64_t seed) {
  Rng rng(seed);
  Fit f;
  f.data = ObservationSet(users, tasks);
  f.domain.assign(tasks, 0);
  f.mu_true.resize(tasks);
  for (std::size_t j = 0; j < tasks; ++j) {
    f.mu_true[j] = rng.uniform(0.0, 20.0);
    for (std::size_t i = 0; i < users; ++i) {
      const double u = 0.5 + 0.25 * static_cast<double>(i);
      f.data.add(j, i, rng.normal(f.mu_true[j], 1.0 / u));
    }
  }
  const Eta2Mle mle;
  f.result = mle.estimate(f.data, f.domain, 1);
  return f;
}

TEST(TaskConfidenceTest, IntervalsContainTheEstimate) {
  const Fit f = make_fit(10, 30, 3);
  const auto intervals = task_confidence_intervals(f.result, f.data, f.domain);
  ASSERT_EQ(intervals.size(), 30u);
  for (std::size_t j = 0; j < 30; ++j) {
    ASSERT_TRUE(intervals[j].has_value());
    EXPECT_TRUE(intervals[j]->contains(f.result.mu[j]));
    EXPECT_GT(intervals[j]->length(), 0.0);
  }
}

TEST(TaskConfidenceTest, CoverageIsRoughlyNominal) {
  // Over many tasks, ~95% of the 95% intervals should contain the truth.
  // (MLE plug-in û makes this approximate; allow generous slack.)
  int covered = 0;
  int total = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Fit f = make_fit(14, 50, seed);
    const auto intervals =
        task_confidence_intervals(f.result, f.data, f.domain, 0.05);
    for (std::size_t j = 0; j < 50; ++j) {
      if (!intervals[j]) continue;
      ++total;
      if (intervals[j]->contains(f.mu_true[j])) ++covered;
    }
  }
  const double rate = static_cast<double>(covered) / total;
  EXPECT_GT(rate, 0.80);
  EXPECT_LE(rate, 1.0);
}

TEST(TaskConfidenceTest, SmallerAlphaWidensIntervals) {
  const Fit f = make_fit(8, 10, 7);
  const auto wide = task_confidence_intervals(f.result, f.data, f.domain, 0.01);
  const auto narrow =
      task_confidence_intervals(f.result, f.data, f.domain, 0.2);
  for (std::size_t j = 0; j < 10; ++j) {
    ASSERT_TRUE(wide[j] && narrow[j]);
    EXPECT_GT(wide[j]->length(), narrow[j]->length());
  }
}

TEST(TaskConfidenceTest, TasksWithoutDataYieldNullopt) {
  ObservationSet data(2, 2);
  data.add(0, 0, 5.0);
  data.add(0, 1, 6.0);
  const std::vector<DomainIndex> domain{0, 0};
  const Eta2Mle mle;
  const MleResult fit = mle.estimate(data, domain, 1);
  const auto intervals = task_confidence_intervals(fit, data, domain);
  EXPECT_TRUE(intervals[0].has_value());
  EXPECT_FALSE(intervals[1].has_value());
}

TEST(TaskConfidenceTest, RejectsBadInputs) {
  const Fit f = make_fit(4, 5, 9);
  EXPECT_THROW(
      task_confidence_intervals(f.result, f.data, f.domain, 0.0),
      std::invalid_argument);
  const std::vector<DomainIndex> wrong(4, 0);
  EXPECT_THROW(task_confidence_intervals(f.result, f.data, wrong),
               std::invalid_argument);
}

}  // namespace
}  // namespace eta2::truth
