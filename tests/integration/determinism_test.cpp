// Parallel-determinism suite: the ETA² hot paths must produce bit-identical
// results at every thread count (the contract in src/common/parallel.h).
// Each case runs a seeded workload at 1, 2, and 8 lanes and compares the
// outputs bitwise (memcmp — NaN-safe, unlike operator==).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "alloc/allocation.h"
#include "alloc/max_quality.h"
#include "clustering/dynamic_clusterer.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "sim/dataset.h"
#include "sim/experiment.h"
#include "truth/eta2_mle.h"

namespace eta2 {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << what << ": parallel output differs bitwise from serial";
  }
}

// Runs `compute` at every thread count and asserts the flattened signature
// is bit-identical to the 1-thread run.
template <typename Compute>
void check_determinism(Compute&& compute, const char* what) {
  std::vector<double> reference;
  for (const std::size_t threads : kThreadCounts) {
    parallel::set_thread_count(threads);
    std::vector<double> signature = compute();
    parallel::set_thread_count(0);
    if (threads == 1) {
      reference = std::move(signature);
    } else {
      expect_bitwise_equal(reference, signature, what);
    }
  }
}

std::vector<double> flatten_mle(const truth::MleResult& result) {
  std::vector<double> flat = result.mu;
  flat.insert(flat.end(), result.sigma.begin(), result.sigma.end());
  for (const auto& row : result.expertise) {
    flat.insert(flat.end(), row.begin(), row.end());
  }
  flat.push_back(static_cast<double>(result.iterations));
  return flat;
}

TEST(DeterminismTest, MleResultBitIdenticalAcrossThreadCounts) {
  const std::size_t users = 40;
  const std::size_t tasks = 300;
  const std::size_t domains = 6;
  Rng rng(123);
  truth::ObservationSet data(users, tasks);
  std::vector<truth::DomainIndex> domain(tasks);
  for (std::size_t j = 0; j < tasks; ++j) {
    domain[j] = j % domains;
    const double mu = rng.uniform(0.0, 20.0);
    for (std::size_t i = 0; i < users; ++i) {
      if (rng.bernoulli(0.3)) data.add(j, i, rng.normal(mu, 1.5));
    }
  }
  check_determinism(
      [&] {
        const truth::Eta2Mle mle;
        return flatten_mle(mle.estimate(data, domain, domains));
      },
      "MleResult");
}

TEST(DeterminismTest, MleZeroTasks) {
  truth::ObservationSet data(10, 0);
  const std::vector<truth::DomainIndex> domain;
  check_determinism(
      [&] {
        const truth::Eta2Mle mle;
        return flatten_mle(mle.estimate(data, domain, 4));
      },
      "MleResult (zero tasks)");
}

TEST(DeterminismTest, MleFewerTasksThanThreads) {
  // 3 tasks against 8 lanes: exercises the fewer-items-than-threads edge.
  truth::ObservationSet data(5, 3);
  const std::vector<truth::DomainIndex> domain = {0, 1, 0};
  Rng rng(9);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 0; i < 5; ++i) data.add(j, i, rng.normal(10.0, 2.0));
  }
  check_determinism(
      [&] {
        const truth::Eta2Mle mle;
        return flatten_mle(mle.estimate(data, domain, 2));
      },
      "MleResult (3 tasks)");
}

TEST(DeterminismTest, DistanceMatrixAndClusteringBitIdentical) {
  const std::size_t dim = 16;
  Rng rng(77);
  std::vector<text::Embedding> batch1;
  std::vector<text::Embedding> batch2;
  for (std::size_t i = 0; i < 60; ++i) {
    text::Embedding v(dim);
    for (double& x : v) x = rng.normal();
    batch1.push_back(std::move(v));
  }
  for (std::size_t i = 0; i < 20; ++i) {
    text::Embedding v(dim);
    for (double& x : v) x = rng.normal();
    batch2.push_back(std::move(v));
  }
  check_determinism(
      [&] {
        std::vector<double> signature;
        // Standalone pairwise matrix.
        const auto dist = clustering::pairwise_task_distances(batch1);
        for (std::size_t i = 1; i < dist.size(); ++i) {
          for (std::size_t j = 0; j < i; ++j) {
            signature.push_back(dist.at(i, j));
          }
        }
        // Dynamic clustering over two rounds (warm-up + incremental).
        clustering::DynamicClusterer clusterer(0.5);
        clusterer.add_tasks(batch1);
        clusterer.add_tasks(batch2);
        signature.push_back(clusterer.dstar());
        for (std::size_t p = 0; p < clusterer.task_count(); ++p) {
          signature.push_back(static_cast<double>(clusterer.domain_of(p)));
        }
        for (const auto d : clusterer.live_domains()) {
          signature.push_back(static_cast<double>(d));
        }
        return signature;
      },
      "distance matrix / clustering");
}

TEST(DeterminismTest, ClustererEmptyBatch) {
  check_determinism(
      [&] {
        clustering::DynamicClusterer clusterer(0.5);
        const auto update = clusterer.add_tasks({});
        return std::vector<double>{
            static_cast<double>(update.assignments.size()),
            static_cast<double>(clusterer.domain_count())};
      },
      "clusterer (empty batch)");
}

TEST(DeterminismTest, AllocationObjectiveBitIdentical) {
  const std::size_t users = 30;
  const std::size_t tasks = 80;
  Rng rng(5);
  alloc::AllocationProblem problem;
  problem.expertise.assign(users, tasks);
  for (double& u : problem.expertise.data()) u = rng.uniform(0.1, 3.0);
  problem.task_time.resize(tasks);
  for (double& t : problem.task_time) t = rng.uniform(0.5, 1.5);
  problem.user_capacity.assign(users, 12.0);
  check_determinism(
      [&] {
        const alloc::MaxQualityAllocator allocator;
        const auto allocation = allocator.allocate(problem);
        std::vector<double> signature{
            alloc::allocation_objective(problem, allocation, 1.0),
            static_cast<double>(allocation.pair_count())};
        for (std::size_t j = 0; j < tasks; ++j) {
          for (const auto i : allocation.users_of(j)) {
            signature.push_back(static_cast<double>(i));
          }
        }
        return signature;
      },
      "allocation objective");
}

TEST(DeterminismTest, SeedSweepBitIdentical) {
  sim::SyntheticOptions options;
  options.tasks = 40;
  options.users = 20;
  options.days = 2;
  const sim::DatasetFactory factory = [options](std::uint64_t seed) {
    return sim::make_synthetic(options, seed);
  };
  check_determinism(
      [&] {
        const auto sweep = sim::sweep_seeds(factory, "eta2",
                                            sim::SimOptions{}, 3, 1);
        std::vector<double> signature{sweep.overall_error.mean,
                                      sweep.total_cost.mean,
                                      sweep.expertise_mae.mean};
        for (const auto& run : sweep.runs) {
          signature.push_back(run.overall_error);
          signature.push_back(run.total_cost);
        }
        return signature;
      },
      "seed sweep");
}

}  // namespace
}  // namespace eta2
