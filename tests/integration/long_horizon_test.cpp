// Long-horizon stability: the paper evaluates 5-day campaigns; a production
// server runs indefinitely. These tests drive 12-day campaigns and assert
// the two failure modes we guard against never reappear:
//  * gauge drift — without anchoring, expertise estimates inflate day over
//    day until clamps saturate;
//  * error regression — the per-day estimation error must not trend upward
//    once expertise is learned.
#include <gtest/gtest.h>

#include <cmath>

#include "core/eta2_server.h"
#include "sim/dataset.h"
#include "sim/simulation.h"

namespace eta2 {
namespace {

sim::Dataset long_campaign(std::uint64_t seed) {
  sim::SyntheticOptions options;
  options.users = 50;
  options.tasks = 600;
  options.domains = 5;
  options.days = 12;
  return sim::make_synthetic(options, seed);
}

TEST(LongHorizonTest, ErrorStaysLowOverTwelveDays) {
  const sim::Dataset d = long_campaign(3);
  const sim::SimOptions options;
  const auto run = sim::simulate(d, "eta2", options, 3);
  ASSERT_EQ(run.days.size(), 12u);
  // Average of the last 4 days clearly below the warm-up day, and the
  // late-campaign error must not creep back above the early learned level.
  const double day0 = run.days[0].estimation_error;
  double early = 0.0;  // days 2-4
  for (int day = 2; day <= 4; ++day) early += run.days[day].estimation_error;
  early /= 3.0;
  double late = 0.0;  // days 9-11
  for (int day = 9; day <= 11; ++day) late += run.days[day].estimation_error;
  late /= 3.0;
  EXPECT_LT(late, day0);
  EXPECT_LT(late, early * 1.3) << "late-campaign regression";
}

TEST(LongHorizonTest, GaugeStaysAnchored) {
  // Drive the server directly so the expertise store can be inspected
  // after every day: the mean learned expertise must stay in a sane band
  // around the anchor instead of drifting.
  const sim::Dataset d = long_campaign(5);
  core::Eta2Server server(d.user_count(), core::Eta2Config{}, nullptr);
  Rng rng(5);
  std::vector<double> caps;
  for (const auto& u : d.users) caps.push_back(u.capacity);
  for (int day = 0; day < d.day_count(); ++day) {
    const auto ids = d.tasks_of_day(day);
    std::vector<core::Eta2Server::NewTask> batch;
    for (const auto j : ids) {
      core::Eta2Server::NewTask t;
      t.known_domain = d.tasks[j].true_domain;
      t.processing_time = d.tasks[j].processing_time;
      batch.push_back(t);
    }
    Rng obs = rng.fork(static_cast<std::uint64_t>(day) + 1);
    server.step(
        batch, caps,
        [&](std::size_t local, std::size_t user) {
          return sim::observe(d, user, ids[local], obs);
        },
        rng);
    if (day < 1) continue;  // store still empty-ish during warm-up
    double log_sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < d.user_count(); ++i) {
      for (std::size_t k = 0; k < server.expertise_store().domain_count(); ++k) {
        log_sum += std::log(server.expertise_store().expertise(i, k));
        ++count;
      }
    }
    const double geo_mean = std::exp(log_sum / static_cast<double>(count));
    EXPECT_GT(geo_mean, 0.5) << "day " << day;
    EXPECT_LT(geo_mean, 2.0) << "day " << day;
  }
}

TEST(LongHorizonTest, BaselineComparisonHoldsOverLongCampaigns) {
  const sim::Dataset d = long_campaign(7);
  const sim::SimOptions options;
  const auto eta2_run = sim::simulate(d, "eta2", options, 7);
  const auto tf_run = sim::simulate(d, "truthfinder", options, 7);
  EXPECT_LT(eta2_run.overall_error, tf_run.overall_error);
}

}  // namespace
}  // namespace eta2
