// Faulted runs must be exactly as reproducible as clean ones: FaultPlan
// decisions are counter-based hashes, so a fault-injected simulation is
// bit-identical at every thread count. Mirrors determinism_test.cpp but
// drives the full simulate() loop with corruption, dropout, batch loss and
// embedder outages switched on.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "sim/dataset.h"
#include "sim/simulation.h"
#include "text/embedder.h"

namespace eta2 {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << what << ": faulted run differs bitwise across thread counts";
  }
}

template <typename Compute>
void check_determinism(Compute&& compute, const char* what) {
  std::vector<double> reference;
  for (const std::size_t threads : kThreadCounts) {
    parallel::set_thread_count(threads);
    std::vector<double> signature = compute();
    parallel::set_thread_count(0);
    if (threads == 1) {
      reference = std::move(signature);
    } else {
      expect_bitwise_equal(reference, signature, what);
    }
  }
}

// Flattens everything a faulted run produced: per-day errors, the health
// ledger, and the injection counts. Any nondeterminism in either the
// numeric path or the fault decisions shows up here.
std::vector<double> flatten_run(const sim::SimulationResult& run) {
  std::vector<double> flat{run.overall_error, run.total_cost};
  for (const auto& day : run.days) {
    flat.push_back(day.estimation_error);
    flat.push_back(day.cost);
    flat.push_back(static_cast<double>(day.pair_count));
  }
  const auto push_health = [&flat](const core::StepHealth& h) {
    flat.push_back(static_cast<double>(h.pairs_asked));
    flat.push_back(static_cast<double>(h.observations_accepted));
    flat.push_back(static_cast<double>(h.rejected_nonfinite));
    flat.push_back(static_cast<double>(h.rejected_out_of_range));
    flat.push_back(static_cast<double>(h.silent_pairs));
    flat.push_back(h.identifier_failed ? 1.0 : 0.0);
    flat.push_back(static_cast<double>(h.domain_fallback_tasks));
    flat.push_back(h.truth_fallback ? 1.0 : 0.0);
    flat.push_back(static_cast<double>(h.quality_unmet_tasks));
    flat.push_back(h.empty_batch ? 1.0 : 0.0);
  };
  push_health(run.health);
  for (const auto& day : run.day_health) push_health(day);
  const fault::FaultStats& f = run.fault_stats;
  for (const std::uint64_t count :
       {f.observations_seen, f.nan_injected, f.inf_injected,
        f.outliers_injected, f.fabricated, f.no_responses, f.dropouts,
        f.batches_dropped, f.embedder_failures}) {
    flat.push_back(static_cast<double>(count));
  }
  return flat;
}

TEST(FaultDeterminismTest, FaultedSyntheticRunBitIdenticalAcrossThreads) {
  sim::SyntheticOptions synthetic;
  synthetic.users = 20;
  synthetic.tasks = 60;
  synthetic.domains = 4;
  synthetic.days = 4;
  const sim::Dataset dataset = sim::make_synthetic(synthetic, 17);

  sim::SimOptions options;
  options.config.observation_abs_limit = 1e5;
  options.fault.seed = 11;
  options.fault.nan_rate = 0.05;
  options.fault.outlier_rate = 0.05;
  options.fault.outlier_scale = 1e8;
  options.fault.dropout_rate = 0.25;
  options.fault.empty_batch_rate = 0.15;
  check_determinism(
      [&] { return flatten_run(sim::simulate(dataset, "eta2", options, 4)); },
      "faulted synthetic eta2 run");
}

TEST(FaultDeterminismTest, EmbedderOutageRunBitIdenticalAcrossThreads) {
  sim::SurveyOptions survey;
  survey.users = 16;
  survey.tasks = 40;
  survey.days = 4;
  const sim::Dataset dataset = sim::make_survey_like(survey, 23);

  sim::SimOptions options;
  options.embedder = std::make_shared<text::HashEmbedder>(16);
  options.fault.seed = 13;
  options.fault.embedder_failure_rate = 0.5;
  options.fault.dropout_rate = 0.2;
  check_determinism(
      [&] { return flatten_run(sim::simulate(dataset, "eta2", options, 6)); },
      "embedder-outage survey run");
}

TEST(FaultDeterminismTest, FaultedBaselineRunBitIdenticalAcrossThreads) {
  sim::SyntheticOptions synthetic;
  synthetic.users = 18;
  synthetic.tasks = 50;
  synthetic.domains = 3;
  synthetic.days = 3;
  const sim::Dataset dataset = sim::make_synthetic(synthetic, 29);

  sim::SimOptions options;
  options.fault.seed = 19;
  options.fault.nan_rate = 0.05;
  options.fault.dropout_rate = 0.3;
  options.fault.fabricator_fraction = 0.2;
  check_determinism(
      [&] {
        return flatten_run(sim::simulate(dataset, "baseline", options, 2));
      },
      "faulted baseline run");
}

}  // namespace
}  // namespace eta2
