// Crash torture for the durable campaign runner: child processes run a
// faulted multi-day campaign and SIGKILL themselves at injected protocol
// instants — mid journal append, before the snapshot rename, after it,
// during rotation and pruning. The parent respawns the child against the
// same campaign directory (raising the kill threshold each round so the
// schedule cannot crash-loop forever) until one run completes, then
// compares the completed campaign's full result signature bitwise against
// an uninterrupted golden run. Resume rounds cycle through 1/2/8 threads:
// recovery restores every stochastic input, so the thread count must not
// show through.
//
// The binary re-executes itself (fork + execv of /proc/self/exe) for each
// child: the parent's parallel runtime owns threads, so a plain fork'd
// child could deadlock in malloc — only execv runs between fork and exec.
//
// ETA2_TORTURE_SEEDS=<n> widens the randomized sweep (CI runs 50);
// ETA2_TORTURE_DIR overrides the scratch root so CI can upload a failing
// campaign directory as an artifact.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#if defined(__linux__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/parallel.h"
#include "core/durable_runner.h"
#include "io/snapshot.h"
#include "serve/batch.h"
#include "serve/service.h"
#include "sim/dataset.h"
#include "sim/durable_sim.h"
#include "sim/simulation.h"
#include "truth/trust.h"

namespace eta2 {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kKillPoints[] = {
    "journal-append-mid",  "journal-append-post", "snapshot-pre-rename",
    "snapshot-post-rename", "journal-rotate",      "journal-prune",
};
constexpr std::size_t kThreadCycle[] = {1, 2, 8};

// The campaign under torture: 12 faulted days, snapshot every 3, so every
// crash lands between generations with journaled work at stake.
sim::Dataset torture_dataset() {
  sim::SyntheticOptions synthetic;
  synthetic.users = 20;
  synthetic.tasks = 240;
  synthetic.domains = 4;
  synthetic.days = 12;
  return sim::make_synthetic(synthetic, 7);
}

sim::SimOptions torture_sim_options() {
  sim::SimOptions options;
  options.config.observation_abs_limit = 1e5;
  options.fault.seed = 11;
  options.fault.nan_rate = 0.04;
  options.fault.outlier_rate = 0.04;
  options.fault.dropout_rate = 0.15;
  options.fault.empty_batch_rate = 0.1;
  return options;
}

// "adv" mode: a campaign under coordinated attack with the kTrimmedV1
// defenses live, so the SIGKILL schedule lands inside the trust ledger's
// quarantine -> probation -> re-admission lifecycle and recovery must
// replay the exact verdicts. Its own dataset shape and lighter transport
// faults: heavy dropout/corruption dilutes per-user residual evidence
// below the conviction thresholds, and an attack campaign that never
// convicts anyone tortures nothing.
sim::Dataset adv_dataset() {
  sim::SyntheticOptions synthetic;
  synthetic.users = 24;
  synthetic.tasks = 108;
  synthetic.domains = 4;
  synthetic.days = 12;
  return sim::make_synthetic(synthetic, 31);
}

sim::SimOptions adv_sim_options() {
  sim::SimOptions options;
  options.config.observation_abs_limit = 1e5;
  options.fault.seed = 11;
  options.fault.nan_rate = 0.02;
  options.fault.outlier_rate = 0.02;
  options.fault.dropout_rate = 0.05;
  options.fault.empty_batch_rate = 0.05;
  options.config.trust.tier = truth::DefenseTier::kTrimmedV1;
  options.adversary.seed = 47;
  options.adversary.sybil_fraction = 0.2;
  options.adversary.clique_count = 1;
  options.adversary.camouflage_fraction = 0.1;
  options.adversary.drift_fraction = 0.1;
  options.adversary.burst_step_rate = 0.3;
  return options;
}

core::DurableOptions torture_durable_options(const std::string& dir) {
  core::DurableOptions durable;
  durable.dir = dir;
  durable.snapshot_cadence = 3;
  durable.max_segment_bytes = 1 << 16;  // several rotations per campaign
  return durable;
}

// Everything a campaign produced, as exact bit patterns — the transcript
// the golden comparison runs on.
std::string signature(const sim::SimulationResult& run) {
  std::vector<std::uint64_t> bits;
  const auto push = [&bits](double v) {
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof(b));
    bits.push_back(b);
  };
  push(run.overall_error);
  push(run.total_cost);
  push(run.expertise_mae);
  for (const auto& day : run.days) {
    push(day.estimation_error);
    push(day.cost);
    bits.push_back(day.pair_count);
    bits.push_back(day.task_count);
    for (const std::size_t v : day.users_per_task) bits.push_back(v);
    for (const double v : day.mean_assigned_expertise) push(v);
  }
  for (const int v : run.truth_iteration_log) {
    bits.push_back(static_cast<std::uint64_t>(v));
  }
  const auto push_health = [&bits](const core::StepHealth& h) {
    bits.push_back(h.pairs_asked);
    bits.push_back(h.observations_accepted);
    bits.push_back(h.rejected_nonfinite);
    bits.push_back(h.rejected_out_of_range);
    bits.push_back(h.silent_pairs);
    bits.push_back(h.quality_unmet_tasks);
    bits.push_back(h.quarantined_batches);
    bits.push_back(h.suspected_users);
    bits.push_back(h.quarantined_users);
    bits.push_back(h.readmitted_users);
    bits.push_back(h.flagged_cliques);
    bits.push_back(h.dropped_quarantined);
    bits.push_back(h.trimmed_observations);
    for (const std::size_t v : h.trust_histogram) bits.push_back(v);
  };
  push_health(run.health);
  for (const auto& day : run.day_health) push_health(day);
  const fault::FaultStats& f = run.fault_stats;
  for (const std::uint64_t v :
       {f.observations_seen, f.nan_injected, f.inf_injected,
        f.outliers_injected, f.fabricated, f.no_responses, f.dropouts,
        f.batches_dropped, f.embedder_failures}) {
    bits.push_back(v);
  }
  const fault::AdversaryStats& a = run.adversary_stats;
  for (const std::uint64_t v :
       {a.observations_seen, a.clique_reports, a.camouflage_honest,
        a.camouflage_poisoned, a.drift_reports, a.burst_reports,
        a.burst_steps}) {
    bits.push_back(v);
  }
  std::string text = "eta2-torture-sig " + std::to_string(bits.size()) + "\n";
  for (const std::uint64_t b : bits) {
    text += std::to_string(b);
    text += "\n";
  }
  return text;
}

const std::string& golden_signature() {
  static const std::string golden = [] {
    const sim::SimulationResult run =
        sim::simulate(torture_dataset(), "eta2", torture_sim_options(), 4);
    return signature(run);
  }();
  return golden;
}

const sim::SimulationResult& adv_golden_run() {
  static const sim::SimulationResult run =
      sim::simulate(adv_dataset(), "eta2", adv_sim_options(), 4);
  return run;
}

const std::string& adv_golden_signature() {
  static const std::string golden = signature(adv_golden_run());
  return golden;
}

std::string scratch_root() {
  if (const char* dir = std::getenv("ETA2_TORTURE_DIR")) return dir;
  return (fs::temp_directory_path() / "eta2_torture").string();
}

// --- serve-mode torture ------------------------------------------------------
// The same SIGKILL discipline applied to a live Eta2Service: a child opens
// (or recovers) the service campaign, feeds whichever of the fixed batch
// sequence is not yet WAL-durable, drains, and checkpoints. Because every
// accepted batch is in the ingest WAL before its ACCEPTED ack, the child
// can always tell where it died: batches 0..steps+queue_depth-1 are
// durable, everything after must be offered again. The signature is the
// final campaign snapshot itself — serialize_campaign() is a pure function
// of campaign state, so a bit-identical snapshot means recovery restored
// the exact server, RNG, and digest state of an uninterrupted service.

constexpr std::uint64_t kServeBatches = 10;

// Kill points for serve mode: the campaign WAL instants, plus the ingest
// WAL's own append/rotate (the "ingest-" prefix is the service's hook
// namespace for its second journal).
constexpr std::string_view kServeKillPoints[] = {
    "journal-append-mid",
    "snapshot-post-rename",
    "ingest-journal-append-mid",
    "ingest-journal-rotate",
};

serve::IngestBatch serve_torture_batch(std::uint64_t index) {
  serve::IngestBatch batch;
  batch.priority = 1;
  for (std::size_t t = 0; t < 3; ++t) {
    core::NewTask task;
    task.known_domain = (index + t) % 4;
    task.processing_time = 0.5 + 0.25 * static_cast<double>(t);
    batch.tasks.push_back(task);
    for (std::size_t u = 0; u < 5; ++u) {
      batch.observations.push_back(
          {t, u, 8.0 + static_cast<double>((3 * index + 5 * t + u) % 11)});
    }
  }
  return batch;
}

serve::Eta2Service::Options serve_torture_options(const std::string& dir) {
  serve::Eta2Service::Options options;
  options.dir = dir;
  options.user_count = 12;
  options.seed = 5;
  options.start_step_thread = false;  // the child pumps steps itself
  options.admission.max_depth = 64;   // nothing may be rejected mid-torture
  options.durable.snapshot_cadence = 3;
  options.durable.max_segment_bytes = 1 << 12;
  return options;
}

// Runs (or resumes) the serve campaign to completion and returns the final
// snapshot bytes. `crash_hook` may SIGKILL the process at any instant.
std::string run_serve_campaign(
    const std::string& dir,
    std::function<void(std::string_view)> crash_hook) {
  serve::Eta2Service::Options options = serve_torture_options(dir);
  options.crash_hook = std::move(crash_hook);
  serve::Eta2Service service(std::move(options));
  const std::uint64_t durable_batches =
      service.steps_completed() + service.queue_depth();
  for (std::uint64_t i = durable_batches; i < kServeBatches; ++i) {
    const auto result = service.ingest(serve_torture_batch(i));
    if (result.decision != serve::Admission::kAccepted) {
      throw std::runtime_error("serve torture: batch rejected");
    }
  }
  service.drain();
  service.stop();
  return io::read_file(dir + "/" +
                       core::DurableRunner::snapshot_file_name());
}

const std::string& serve_golden_signature() {
  static const std::string golden = [] {
    const std::string dir = scratch_root() + "/serve_golden";
    fs::remove_all(dir);
    io::set_durable_fsync(false);
    std::string sig = run_serve_campaign(dir, nullptr);
    io::set_durable_fsync(true);
    fs::remove_all(dir);
    return sig;
  }();
  return golden;
}

#if defined(__linux__)

// Spawns one child campaign run (`mode` is "sim" or "serve"). Returns the
// raw waitpid status.
int spawn_child(const std::string& dir, std::string_view point, int kill_at,
                std::size_t threads, std::string_view mode) {
  // argv is fully built before fork: the parent is multithreaded (parallel
  // runtime), so the child may only call async-signal-safe functions
  // between fork and exec.
  std::vector<std::string> args = {
      "/proc/self/exe",
      "--torture-child",
      "--dir=" + dir,
      "--point=" + std::string(point),
      "--kill-at=" + std::to_string(kill_at),
      "--threads=" + std::to_string(threads),
      "--mode=" + std::string(mode),
  };
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv("/proc/self/exe", argv.data());
    ::_exit(127);
  }
  EXPECT_GT(pid, 0) << "fork failed";
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

// Crash/resume cycle: kill the campaign at `point`, raising the kill
// threshold every round (so even a kill on the very first durable write
// cannot loop forever), until a child completes and writes its signature.
std::string run_until_complete(const std::string& dir, std::string_view point,
                               int base_kill, std::uint64_t thread_salt,
                               std::string_view mode = "sim") {
  fs::remove_all(dir);
  int kills = 0;
  for (int round = 0; round < 120; ++round) {
    const int kill_at = base_kill + 3 * round;
    const std::size_t threads =
        kThreadCycle[(thread_salt + static_cast<std::uint64_t>(round)) % 3];
    const int status = spawn_child(dir, point, kill_at, threads, mode);
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      EXPECT_GT(kills, 0) << point
                          << ": schedule never killed a child; the point "
                             "did not fire";
      return io::read_file(dir + "/result.sig");
    }
    if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
      ++kills;
      continue;
    }
    ADD_FAILURE() << point << ": child neither completed nor was SIGKILLed "
                  << "(status " << status << ") — campaign dir kept at "
                  << dir;
    return "";
  }
  ADD_FAILURE() << point << ": campaign never completed after 120 rounds — "
                << "campaign dir kept at " << dir;
  return "";
}

void expect_torture_cycle(std::string_view test_tag, std::string_view point,
                          int base_kill, std::uint64_t thread_salt,
                          std::string_view mode = "sim") {
  // The tag keeps concurrently running torture tests (ctest -j) out of
  // each other's campaign directories.
  const std::string dir =
      scratch_root() + "/" + std::string(test_tag) + "_" +
      std::string(point) + "_" + std::to_string(base_kill) + "_" +
      std::to_string(thread_salt);
  const std::string sig =
      run_until_complete(dir, point, base_kill, thread_salt, mode);
  if (sig.empty()) return;  // failure already recorded, dir kept
  const std::string& golden =
      mode == "adv" ? adv_golden_signature() : golden_signature();
  EXPECT_EQ(sig, golden)
      << point << ": resumed campaign diverged from the uninterrupted run — "
      << "campaign dir kept at " << dir;
  if (sig == golden) fs::remove_all(dir);
}

void expect_serve_torture_cycle(std::string_view point, int base_kill,
                                std::uint64_t thread_salt) {
  const std::string dir = scratch_root() + "/serve_" + std::string(point) +
                          "_" + std::to_string(base_kill) + "_" +
                          std::to_string(thread_salt);
  const std::string sig =
      run_until_complete(dir, point, base_kill, thread_salt, "serve");
  if (sig.empty()) return;  // failure already recorded, dir kept
  EXPECT_EQ(sig, serve_golden_signature())
      << point << ": recovered service diverged from the uninterrupted "
      << "campaign — campaign dir kept at " << dir;
  if (sig == serve_golden_signature()) fs::remove_all(dir);
}

TEST(CrashTortureTest, EveryInjectedKillPointResumesBitIdentical) {
  std::uint64_t salt = 0;
  for (const std::string_view point : kKillPoints) {
    expect_torture_cycle("points", point, 1, salt++);
    if (::testing::Test::HasFailure()) break;  // keep the failing dir legible
  }
}

TEST(CrashTortureTest, ServeCampaignKillPointsRecoverBitIdentical) {
  std::uint64_t salt = 0;
  for (const std::string_view point : kServeKillPoints) {
    expect_serve_torture_cycle(point, 1, salt++);
    if (::testing::Test::HasFailure()) break;  // keep the failing dir legible
  }
}

TEST(CrashTortureTest, AdversarialDefendedCampaignResumesBitIdentical) {
  // First prove the campaign actually crosses the full trust lifecycle —
  // otherwise the kills cannot land inside it and the test is vacuous.
  const sim::SimulationResult& golden = adv_golden_run();
  std::size_t quarantined = 0;
  std::size_t readmitted = 0;
  for (const auto& day : golden.day_health) {
    quarantined += day.quarantined_users;
    readmitted += day.readmitted_users;
  }
  ASSERT_GT(quarantined, 0u) << "attack never convicted anyone";
  ASSERT_GT(readmitted, 0u) << "campaign never re-admitted a quarantined user";
  ASSERT_GT(golden.adversary_stats.clique_reports, 0u);

  // A subset of the kill points: the journal instants and both sides of
  // the snapshot rename cover every distinct recovery path; the full
  // matrix already runs attack-free above.
  constexpr std::string_view kAdvPoints[] = {
      "journal-append-mid", "snapshot-pre-rename", "snapshot-post-rename"};
  std::uint64_t salt = 0;
  for (const std::string_view point : kAdvPoints) {
    expect_torture_cycle("adv", point, 1, salt++, "adv");
    if (::testing::Test::HasFailure()) break;  // keep the failing dir legible
  }
}

TEST(CrashTortureTest, RandomizedKillSchedulesResumeBitIdentical) {
  int seeds = 4;  // CI sets ETA2_TORTURE_SEEDS=50
  if (const char* env = std::getenv("ETA2_TORTURE_SEEDS")) {
    seeds = std::atoi(env);
  }
  for (int seed = 0; seed < seeds; ++seed) {
    const auto s = static_cast<std::uint64_t>(seed);
    const std::string_view point = kKillPoints[(s * 2654435761u) % 6];
    // Every point fires at least 6 times per full campaign (one per
    // checkpoint for the snapshot/rotate/prune points), so thresholds in
    // [1, 5] always land a kill on the first round.
    const int base_kill = 1 + static_cast<int>((s * 40503u) % 5);
    SCOPED_TRACE("torture seed " + std::to_string(seed));
    expect_torture_cycle("seeds", point, base_kill, s);
    if (::testing::Test::HasFailure()) break;
  }
}

#else  // !defined(__linux__)

TEST(CrashTortureTest, EveryInjectedKillPointResumesBitIdentical) {
  GTEST_SKIP() << "crash torture needs /proc/self/exe + SIGKILL (Linux only)";
}

#endif

}  // namespace

// Child entry: runs the torture campaign with a SIGKILL scheduled at the
// kill_at-th firing of the chosen crash point, completing (exit 0) when the
// schedule never fires. Dispatched from main() before gtest sees argv.
int torture_child_main(int argc, char** argv) {
#if defined(__linux__)
  std::string dir;
  std::string point;
  std::string mode = "sim";
  int kill_at = 0;
  std::size_t threads = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&arg] {
      return std::string(arg.substr(arg.find('=') + 1));
    };
    if (arg.starts_with("--dir=")) dir = value();
    if (arg.starts_with("--point=")) point = value();
    if (arg.starts_with("--kill-at=")) kill_at = std::atoi(value().c_str());
    if (arg.starts_with("--mode=")) mode = value();
    if (arg.starts_with("--threads=")) {
      threads = static_cast<std::size_t>(std::atoi(value().c_str()));
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "torture child: --dir required\n");
    return 2;
  }
  // SIGKILL, not power loss: the page cache survives the process, so
  // skipping fsync changes nothing the test can observe and keeps the many
  // child generations fast.
  io::set_durable_fsync(false);
  if (threads >= 1) parallel::set_thread_count(threads);

  int fired = 0;
  std::function<void(std::string_view)> crash_hook;
  if (kill_at > 0) {
    crash_hook = [&](std::string_view p) {
      if (p == point && ++fired == kill_at) ::kill(::getpid(), SIGKILL);
    };
  }
  try {
    if (mode == "serve") {
      const std::string sig = run_serve_campaign(dir, crash_hook);
      io::atomic_write_file(dir + "/result.sig", sig);
      return 0;
    }
    core::DurableOptions durable = torture_durable_options(dir);
    durable.crash_hook = crash_hook;
    const bool adv = mode == "adv";
    const sim::SimulationResult run = sim::simulate_durable(
        adv ? adv_dataset() : torture_dataset(), "eta2",
        adv ? adv_sim_options() : torture_sim_options(), 4, durable);
    io::atomic_write_file(dir + "/result.sig", signature(run));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "torture child: %s\n", e.what());
    return 2;
  }
#else
  (void)argc;
  (void)argv;
  return 2;
#endif
}

}  // namespace eta2

int main(int argc, char** argv) {
  if (argc > 1 && std::string_view(argv[1]) == "--torture-child") {
    return eta2::torture_child_main(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
