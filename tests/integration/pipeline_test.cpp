// End-to-end integration tests: the full pipeline (skip-gram embeddings →
// pair-word → dynamic clustering → expertise-aware truth analysis →
// expertise-aware allocation) on generated datasets, plus the paper's
// headline claims as assertions.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/dataset.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace eta2 {
namespace {

// Trained once for the whole suite (deterministic).
std::shared_ptr<const text::Embedder> trained_embedder() {
  static std::shared_ptr<const text::Embedder> cached =
      sim::make_trained_embedder(/*seed=*/7, /*dimension=*/24,
                                 /*sentences_per_topic=*/150);
  return cached;
}

TEST(PipelineIntegration, SurveyPipelineEndToEnd) {
  sim::SurveyOptions survey;
  survey.tasks = 100;
  const sim::Dataset d = sim::make_survey_like(survey, 21);
  sim::SimOptions options;
  options.embedder = trained_embedder();
  const auto r = sim::simulate(d, "eta2", options, 21);
  ASSERT_EQ(r.days.size(), 5u);
  EXPECT_FALSE(std::isnan(r.overall_error));
  // Sanity: the pipeline produces usable estimates (error well below the
  // no-information scale of ~1 base number).
  EXPECT_LT(r.overall_error, 1.0);
}

TEST(PipelineIntegration, Eta2BeatsAllBaselinesOnSynthetic) {
  // The paper's headline (Fig. 5c): ETA² outperforms every comparison
  // approach on the synthetic dataset. Averaged over a few seeds to keep
  // the assertion stable.
  sim::SimOptions options;
  const auto factory = [](std::uint64_t seed) {
    sim::SyntheticOptions o;
    o.users = 50;
    o.tasks = 250;
    o.domains = 5;
    return sim::make_synthetic(o, seed);
  };
  const auto eta2 =
      sim::sweep_seeds(factory, "eta2", options, 3, 100);
  for (const auto method :
       {"hubs", "avglog",
        "truthfinder", "baseline"}) {
    const auto other = sim::sweep_seeds(factory, method, options, 3, 100);
    EXPECT_LT(eta2.overall_error.mean, other.overall_error.mean)
        << sim::method_name(method);
  }
}

TEST(PipelineIntegration, ErrorDecreasesOverDaysOnAverage) {
  // Fig. 5 trend: the estimation error of ETA² drops over time.
  sim::SimOptions options;
  const auto sweep = sim::sweep_seeds(
      [](std::uint64_t seed) {
        sim::SyntheticOptions o;
        o.users = 60;
        o.tasks = 400;
        o.domains = 6;
        return sim::make_synthetic(o, seed);
      },
      "eta2", options, 3, 200);
  ASSERT_EQ(sweep.per_day_error.size(), 5u);
  EXPECT_LT(sweep.per_day_error[4], sweep.per_day_error[0]);
  EXPECT_LT(sweep.per_day_error[3], sweep.per_day_error[0]);
}

TEST(PipelineIntegration, MoreCapacityLowersError) {
  // Fig. 6 trend: error decreases as the average processing capability τ
  // grows.
  sim::SimOptions options;
  auto run_with_capacity = [&](double tau) {
    return sim::sweep_seeds(
               [tau](std::uint64_t seed) {
                 sim::SyntheticOptions o;
                 o.users = 40;
                 o.tasks = 200;
                 o.domains = 4;
                 o.mean_capacity = tau;
                 return sim::make_synthetic(o, seed);
               },
               "eta2", options, 3, 300)
        .overall_error.mean;
  };
  const double low = run_with_capacity(6.0);
  const double high = run_with_capacity(18.0);
  EXPECT_LT(high, low);
}

TEST(PipelineIntegration, MinCostMeetsQualityAtLowerCost) {
  // Fig. 9/10 trend: ETA²-mc stays within the quality requirement while
  // spending materially less than ETA².
  sim::SimOptions options;
  options.config.epsilon_bar = 0.5;
  options.config.confidence_alpha = 0.05;
  options.config.cost_per_iteration = 50.0;
  const auto factory = [](std::uint64_t seed) {
    sim::SyntheticOptions o;
    o.users = 80;
    o.tasks = 300;
    o.domains = 6;
    o.mean_capacity = 16.0;
    return sim::make_synthetic(o, seed);
  };
  const auto mq = sim::sweep_seeds(factory, "eta2", options, 3, 400);
  const auto mc =
      sim::sweep_seeds(factory, "eta2-mc", options, 3, 400);
  EXPECT_LT(mc.total_cost.mean, 0.8 * mq.total_cost.mean);
  EXPECT_LT(mc.overall_error.mean, options.config.epsilon_bar);
}

TEST(PipelineIntegration, ExpertiseEstimateImprovesWithCapacity) {
  // Fig. 11 trend: the expertise estimation error decreases with τ.
  sim::SimOptions options;
  auto run_with_capacity = [&](double tau) {
    return sim::sweep_seeds(
               [tau](std::uint64_t seed) {
                 sim::SyntheticOptions o;
                 o.users = 40;
                 o.tasks = 300;
                 o.domains = 4;
                 o.mean_capacity = tau;
                 return sim::make_synthetic(o, seed);
               },
               "eta2", options, 3, 500)
        .expertise_mae.mean;
  };
  const double low = run_with_capacity(6.0);
  const double high = run_with_capacity(20.0);
  EXPECT_LT(high, low);
}

TEST(PipelineIntegration, RobustToNonNormalBias) {
  // Fig. 8 trend: moderate uniform-noise contamination must not blow up
  // the estimation error.
  sim::SimOptions options;
  auto run_with_bias = [&](double fraction) {
    return sim::sweep_seeds(
               [fraction](std::uint64_t seed) {
                 sim::SyntheticOptions o;
                 o.users = 40;
                 o.tasks = 200;
                 o.domains = 4;
                 o.nonnormal_fraction = fraction;
                 return sim::make_synthetic(o, seed);
               },
               "eta2", options, 3, 600)
        .overall_error.mean;
  };
  const double clean = run_with_bias(0.0);
  const double half = run_with_bias(0.5);
  EXPECT_LT(half, clean * 1.5);  // "only a slight increase"
}

}  // namespace
}  // namespace eta2
