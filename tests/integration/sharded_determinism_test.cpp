// Shard-merge determinism suite (DESIGN.md §12): the sharded step pipeline
// must produce identical golden transcripts at every (thread count, shard
// count) combination, and — under the default ShardingTier::kExact — the
// exact bytes of the monolithic reference path. Runs in the sanitize-tagged
// determinism binary so the TSan job covers the shard dispatch.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "../core/golden_scenarios.h"
#include "common/parallel.h"
#include "core/config.h"

namespace eta2 {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};
constexpr std::size_t kShardCounts[] = {0, 1, 2, 8};

std::string run_labeled(const core::Eta2Config& config, std::size_t threads) {
  parallel::set_thread_count(threads);
  const testing::GoldenRun run = testing::run_labeled_scenario(config);
  parallel::set_thread_count(0);
  return run.transcript + run.saved + run.post;
}

std::string run_described(const core::Eta2Config& config, std::size_t threads) {
  parallel::set_thread_count(threads);
  const testing::GoldenRun run = testing::run_described_scenario(config);
  parallel::set_thread_count(0);
  return run.transcript + run.saved + run.post;
}

TEST(ShardedDeterminismTest, LabeledTranscriptStableAcrossThreadsAndShards) {
  core::Eta2Config monolithic;
  monolithic.sharded_step = false;
  const std::string reference = run_labeled(monolithic, 1);
  for (const std::size_t shards : kShardCounts) {
    core::Eta2Config config;
    config.sharded_step = true;
    config.shard_count = shards;
    for (const std::size_t threads : kThreadCounts) {
      EXPECT_EQ(reference, run_labeled(config, threads))
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(ShardedDeterminismTest, DescribedTranscriptStableAcrossThreadsAndShards) {
  core::Eta2Config monolithic;
  monolithic.sharded_step = false;
  const std::string reference = run_described(monolithic, 1);
  for (const std::size_t shards : kShardCounts) {
    core::Eta2Config config;
    config.sharded_step = true;
    config.shard_count = shards;
    for (const std::size_t threads : kThreadCounts) {
      EXPECT_EQ(reference, run_described(config, threads))
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(ShardedDeterminismTest, MinCostPipelineUnaffectedByShardKnobs) {
  // The min-cost strategy has no sharded route; the sharded truth update
  // must still leave its transcript byte-identical to the monolithic run.
  core::Eta2Config monolithic;
  monolithic.use_min_cost = true;
  monolithic.sharded_step = false;
  const std::string reference = run_labeled(monolithic, 1);
  core::Eta2Config config;
  config.use_min_cost = true;
  config.shard_count = 2;
  for (const std::size_t threads : kThreadCounts) {
    EXPECT_EQ(reference, run_labeled(config, threads)) << threads;
  }
}

// Single-domain batch: every task lands in one shard, all other shards (when
// shard_count > 1) are empty no-ops; the transcript must not care.
std::string run_single_domain(const core::Eta2Config& config,
                              std::size_t threads) {
  parallel::set_thread_count(threads);
  const std::size_t users = 5;
  const std::vector<double> caps(users, 6.0);
  core::Eta2Server server(users, config, nullptr);
  Rng rng(11);
  std::string transcript;
  for (int step = 0; step < 3; ++step) {
    std::vector<core::Eta2Server::NewTask> tasks(4);
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      tasks[t].known_domain = 0;  // one domain for the whole run
      tasks[t].processing_time = 1.0 + 0.5 * static_cast<double>(t % 2);
    }
    transcript += testing::format_step(
        step, server.step(tasks, caps, testing::golden_collect(step), rng));
  }
  parallel::set_thread_count(0);
  return transcript;
}

TEST(ShardedDeterminismTest, SingleDomainAndEmptyShardsMatchMonolithic) {
  core::Eta2Config monolithic;
  monolithic.sharded_step = false;
  const std::string reference = run_single_domain(monolithic, 1);
  for (const std::size_t shards : kShardCounts) {
    core::Eta2Config config;
    config.shard_count = shards;  // shards > 1 ⇒ empty shards every step
    for (const std::size_t threads : kThreadCounts) {
      EXPECT_EQ(reference, run_single_domain(config, threads))
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

// FNV-1a over the transcript bytes: enough to pin a tier's behavior without
// embedding the full hexfloat dump.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

TEST(ShardedDeterminismTest, DomainLocalTierStableAndPinned) {
  // kDomainLocalV1 is NOT bit-identical to kExact (per-shard convergence
  // loops), but it must be deterministic across thread counts and its
  // transcript is pinned here: any numeric change to the tier must mint
  // kDomainLocalV2 instead of shifting these bytes.
  core::Eta2Config config;
  config.sharding_tier = truth::ShardingTier::kDomainLocalV1;
  const std::string reference = run_labeled(config, 1);
  for (const std::size_t threads : kThreadCounts) {
    EXPECT_EQ(reference, run_labeled(config, threads)) << threads;
  }
  EXPECT_EQ(fnv1a(reference), 0x893b69c3b9bb42c5ULL)
      << "pinned kDomainLocalV1 transcript drifted";
}

}  // namespace
}  // namespace eta2
