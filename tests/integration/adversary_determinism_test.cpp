// Attacked runs must be exactly as reproducible as clean ones, with the
// defenses off AND on: AdversaryPlan decisions are counter-based hashes and
// every TrustLedger update happens on the serial post-commit path, so an
// adversarial simulation is bit-identical at any thread count, and a
// defended durable campaign that dies mid-quarantine resumes into the same
// verdicts — quarantine, probation and re-admission included.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "io/snapshot.h"
#include "sim/dataset.h"
#include "sim/durable_sim.h"
#include "sim/simulation.h"
#include "truth/trust.h"

namespace eta2 {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << what << ": attacked run differs bitwise";
  }
}

template <typename Compute>
void check_determinism(Compute&& compute, const char* what) {
  std::vector<double> reference;
  for (const std::size_t threads : kThreadCounts) {
    parallel::set_thread_count(threads);
    std::vector<double> signature = compute();
    parallel::set_thread_count(0);
    if (threads == 1) {
      reference = std::move(signature);
    } else {
      expect_bitwise_equal(reference, signature, what);
    }
  }
}

// Flattens everything an attacked run produced: per-day errors, the health
// ledger (trust-defense counters and census included), and the
// delivered-attack tallies. Any nondeterminism in the numeric path, the
// attack decisions, or the ledger's verdicts shows up here.
std::vector<double> flatten_run(const sim::SimulationResult& run) {
  std::vector<double> flat{run.overall_error, run.total_cost};
  for (const auto& day : run.days) {
    flat.push_back(day.estimation_error);
    flat.push_back(day.cost);
    flat.push_back(static_cast<double>(day.pair_count));
  }
  const auto push_health = [&flat](const core::StepHealth& h) {
    flat.push_back(static_cast<double>(h.pairs_asked));
    flat.push_back(static_cast<double>(h.observations_accepted));
    flat.push_back(static_cast<double>(h.rejected_nonfinite));
    flat.push_back(static_cast<double>(h.silent_pairs));
    flat.push_back(static_cast<double>(h.quality_unmet_tasks));
    flat.push_back(h.empty_batch ? 1.0 : 0.0);
    flat.push_back(static_cast<double>(h.suspected_users));
    flat.push_back(static_cast<double>(h.quarantined_users));
    flat.push_back(static_cast<double>(h.readmitted_users));
    flat.push_back(static_cast<double>(h.flagged_cliques));
    flat.push_back(static_cast<double>(h.dropped_quarantined));
    flat.push_back(static_cast<double>(h.trimmed_observations));
    for (const std::size_t bucket : h.trust_histogram) {
      flat.push_back(static_cast<double>(bucket));
    }
  };
  push_health(run.health);
  for (const auto& day : run.day_health) push_health(day);
  const fault::AdversaryStats& a = run.adversary_stats;
  for (const std::uint64_t count :
       {a.observations_seen, a.clique_reports, a.camouflage_honest,
        a.camouflage_poisoned, a.drift_reports, a.burst_reports,
        a.burst_steps}) {
    flat.push_back(static_cast<double>(count));
  }
  return flat;
}

sim::Dataset attacked_dataset(int days = 6) {
  sim::SyntheticOptions synthetic;
  synthetic.users = 24;
  synthetic.tasks = 90;
  synthetic.domains = 4;
  synthetic.days = days;
  return sim::make_synthetic(synthetic, 31);
}

// Every attack family at once — the worst case for decision-order
// sensitivity.
sim::SimOptions attacked_options(truth::DefenseTier tier) {
  sim::SimOptions options;
  options.config.trust.tier = tier;
  options.adversary.seed = 47;
  options.adversary.sybil_fraction = 0.2;
  options.adversary.clique_count = 1;
  options.adversary.camouflage_fraction = 0.1;
  options.adversary.drift_fraction = 0.1;
  options.adversary.burst_step_rate = 0.3;
  return options;
}

TEST(AdversaryDeterminismTest, AttackedRunBitIdenticalWithDefensesOff) {
  const sim::Dataset dataset = attacked_dataset();
  const sim::SimOptions options = attacked_options(truth::DefenseTier::kOff);
  check_determinism(
      [&] { return flatten_run(sim::simulate(dataset, "eta2", options, 4)); },
      "attacked eta2 run, defenses off");
}

TEST(AdversaryDeterminismTest, AttackedRunBitIdenticalWithDefensesOn) {
  // Ten days: enough EWMA evidence for the ledger to actually convict
  // (six days leave every clique below the quarantine weight threshold).
  const sim::Dataset dataset = attacked_dataset(10);
  const sim::SimOptions options =
      attacked_options(truth::DefenseTier::kTrimmedV1);
  std::vector<double> reference;
  check_determinism(
      [&] {
        const sim::SimulationResult run =
            sim::simulate(dataset, "eta2", options, 4);
        // The defense must actually engage, or this is vacuous.
        EXPECT_GT(run.health.quarantined_users, 0u);
        return flatten_run(run);
      },
      "attacked eta2 run, kTrimmedV1 defenses");
}

// Simulates a process death at a protocol instant (crash_torture_test
// covers the real SIGKILL); not one of the runner's retryable types.
struct SimulatedCrash {};

TEST(AdversaryDeterminismTest, DefendedDurableResumeSpansQuarantineLifecycle) {
  const std::string dir =
      (fs::temp_directory_path() / "eta2_adversary_resume_test").string();
  fs::remove_all(dir);
  io::set_durable_fsync(false);

  // A long clique campaign: colluders are quarantined early, serve their
  // sentence, are re-admitted on probation, relapse, and are re-convicted —
  // the crash lands inside that lifecycle and recovery must replay it.
  const sim::Dataset dataset = attacked_dataset(10);
  sim::SimOptions options = attacked_options(truth::DefenseTier::kTrimmedV1);
  const sim::SimulationResult golden =
      sim::simulate(dataset, "eta2", options, 4);
  std::size_t readmitted = 0;
  for (const auto& day : golden.day_health) readmitted += day.readmitted_users;
  ASSERT_GT(readmitted, 0u)
      << "campaign too short to cross quarantine -> re-admission";

  core::DurableOptions durable;
  durable.dir = dir;
  durable.snapshot_cadence = 2;
  int fired = 0;
  durable.crash_hook = [&](std::string_view point) {
    if (point == "snapshot-post-rename" && ++fired == 2) {
      throw SimulatedCrash{};
    }
  };
  EXPECT_THROW(sim::simulate_durable(dataset, "eta2", options, 4, durable),
               SimulatedCrash);

  durable.crash_hook = nullptr;
  const sim::SimulationResult resumed =
      sim::simulate_durable(dataset, "eta2", options, 4, durable);
  EXPECT_TRUE(resumed.resumed);
  expect_bitwise_equal(flatten_run(golden), flatten_run(resumed),
                       "defended durable resume");

  io::set_durable_fsync(true);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace eta2
