// Integration tests of the expertise-domain lifecycle across server steps
// (paper §4.2's special cases): new domains appearing in later time steps,
// and two existing domains merging when bridging tasks arrive.
#include <gtest/gtest.h>

#include <set>

#include "core/eta2_server.h"
#include "text/embedder.h"

namespace eta2::core {
namespace {

Eta2Server::NewTask described(const std::string& description) {
  Eta2Server::NewTask t;
  t.description = description;
  t.processing_time = 1.0;
  return t;
}

Eta2Server::CollectFn constant_value(double value) {
  return [value](std::size_t, std::size_t) { return value; };
}

TEST(DomainLifecycleTest, NewDomainAppearsInLaterStep) {
  auto embedder = std::make_shared<text::HashEmbedder>(32);
  Eta2Config config;
  config.gamma = 0.4;
  Eta2Server server(3, config, embedder);
  Rng rng(1);
  const std::vector<double> caps(3, 20.0);

  std::vector<Eta2Server::NewTask> day0 = {
      described("noise near the park"), described("noise around the park"),
      described("salary at the bank"), described("salary of the bank")};
  const auto r0 = server.step(day0, caps, constant_value(1.0), rng);
  const std::set<truth::DomainIndex> domains0(r0.task_domains.begin(),
                                              r0.task_domains.end());
  ASSERT_EQ(domains0.size(), 2u);

  // A semantically distant batch must not be absorbed into either domain.
  std::vector<Eta2Server::NewTask> day1 = {
      described("vaccines at the clinic"),
      described("vaccines near the clinic")};
  const auto r1 = server.step(day1, caps, constant_value(2.0), rng);
  EXPECT_EQ(r1.task_domains[0], r1.task_domains[1]);
  EXPECT_FALSE(domains0.contains(r1.task_domains[0]));
  EXPECT_EQ(server.expertise_store().domain_count(), 3u);
}

TEST(DomainLifecycleTest, RepeatedTopicsKeepStableDomains) {
  auto embedder = std::make_shared<text::HashEmbedder>(32);
  Eta2Config config;
  config.gamma = 0.4;
  Eta2Server server(3, config, embedder);
  Rng rng(2);
  const std::vector<double> caps(3, 20.0);

  const auto r0 = server.step(
      std::vector<Eta2Server::NewTask>{described("noise near the park"),
                                       described("salary at the bank")},
      caps, constant_value(1.0), rng);
  for (int day = 1; day < 4; ++day) {
    const auto r = server.step(
        std::vector<Eta2Server::NewTask>{described("noise near the park"),
                                         described("salary at the bank")},
        caps, constant_value(1.0), rng);
    EXPECT_EQ(r.task_domains[0], r0.task_domains[0]) << "day " << day;
    EXPECT_EQ(r.task_domains[1], r0.task_domains[1]) << "day " << day;
  }
}

TEST(DomainLifecycleTest, ExpertiseSurvivesDomainMerge) {
  // Build two artificial domains whose semantic vectors sit close enough
  // that a later, in-between batch triggers a merge; the merged domain must
  // keep the users' accumulated expertise (the store folds accumulators).
  auto embedder = std::make_shared<text::HashEmbedder>(32);
  Eta2Config config;
  config.gamma = 0.9;  // generous threshold: merges happen readily
  Eta2Server server(4, config, embedder);
  Rng rng(3);
  const std::vector<double> caps(4, 30.0);

  // Two near-but-distinct description groups, plus one far group that
  // stretches d* so the near groups initially stay separate only if their
  // distance exceeds γ·d*... then shrink: the bridging batch merges them.
  auto collect = [](std::size_t, std::size_t user) {
    static Rng obs(17);
    return user == 0 ? obs.normal(5.0, 0.05) : obs.normal(5.0, 3.0);
  };
  std::vector<Eta2Server::NewTask> day0;
  for (int k = 0; k < 3; ++k) day0.push_back(described("noise near the park"));
  for (int k = 0; k < 3; ++k) day0.push_back(described("salary at the bank"));
  const auto r0 = server.step(day0, caps, collect, rng);
  const std::size_t domains_before = server.expertise_store().domain_count();

  // Bridging batch: tasks mixing the two groups' vocabulary.
  std::vector<Eta2Server::NewTask> day1;
  for (int k = 0; k < 2; ++k) {
    day1.push_back(described("noise of the bank salary near the park"));
  }
  const auto r1 = server.step(day1, caps, collect, rng);

  // Whatever the merge outcome, the pipeline stays consistent: every
  // reported domain is live in the store and user 0 (the precise reporter)
  // outranks the noisy users in every surviving domain that has data.
  EXPECT_LE(server.expertise_store().domain_count(),
            domains_before + 1);
  for (const truth::DomainIndex k : r1.task_domains) {
    ASSERT_LT(k, server.expertise_store().domain_count());
    EXPECT_GE(server.expertise_store().expertise(0, k),
              server.expertise_store().expertise(1, k));
  }
}

TEST(DomainLifecycleTest, MinCostWorksWithDescribedTasks) {
  // Combination not covered elsewhere: Algorithm 2 (min-cost) driven by
  // domains discovered from descriptions.
  auto embedder = std::make_shared<text::HashEmbedder>(32);
  Eta2Config config;
  config.gamma = 0.4;
  config.use_min_cost = true;
  config.epsilon_bar = 0.8;
  config.cost_per_iteration = 6.0;
  Eta2Server server(6, config, embedder);
  Rng rng(21);
  const std::vector<double> caps(6, 20.0);

  auto make_batch = [] {
    std::vector<Eta2Server::NewTask> batch;
    for (int k = 0; k < 4; ++k) {
      batch.push_back(described("noise near the park"));
      batch.push_back(described("salary at the bank"));
    }
    return batch;
  };
  auto collect = [](std::size_t j, std::size_t) {
    static Rng obs(33);
    return obs.normal(10.0 + static_cast<double>(j), 0.4);
  };
  // Warm-up (random), then min-cost steps.
  server.step(make_batch(), caps, collect, rng);
  const auto r = server.step(make_batch(), caps, collect, rng);
  EXPECT_FALSE(r.warmup);
  EXPECT_GE(r.data_iterations, 1);
  EXPECT_EQ(r.truth.size(), 8u);
  // Both discovered domains appear among the step's tasks.
  const std::set<truth::DomainIndex> domains(r.task_domains.begin(),
                                             r.task_domains.end());
  EXPECT_EQ(domains.size(), 2u);
  for (std::size_t j = 0; j < r.truth.size(); ++j) {
    EXPECT_NEAR(r.truth[j], 10.0 + static_cast<double>(j), 1.5) << j;
  }
}

}  // namespace
}  // namespace eta2::core
