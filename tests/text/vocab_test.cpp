#include "text/vocab.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace eta2::text {
namespace {

std::vector<std::vector<std::string>> tiny_corpus() {
  return {
      {"apple", "banana", "apple"},
      {"apple", "cherry"},
      {"banana", "apple"},
  };
}

TEST(VocabTest, CountsAndIds) {
  const Vocab v = Vocab::build(tiny_corpus());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.total_count(), 7u);
  // Most frequent word gets id 0.
  EXPECT_EQ(v.id("apple"), 0u);
  EXPECT_EQ(v.count(v.id("apple")), 4u);
  EXPECT_EQ(v.count(v.id("banana")), 2u);
  EXPECT_EQ(v.count(v.id("cherry")), 1u);
}

TEST(VocabTest, MinCountPrunes) {
  const Vocab v = Vocab::build(tiny_corpus(), 2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.contains("apple"));
  EXPECT_TRUE(v.contains("banana"));
  EXPECT_FALSE(v.contains("cherry"));
  EXPECT_EQ(v.id("cherry"), Vocab::kUnknown);
}

TEST(VocabTest, WordLookupRoundTrips) {
  const Vocab v = Vocab::build(tiny_corpus());
  for (std::size_t id = 0; id < v.size(); ++id) {
    EXPECT_EQ(v.id(v.word(id)), id);
  }
}

TEST(VocabTest, FrequencySumsToOne) {
  const Vocab v = Vocab::build(tiny_corpus());
  double total = 0.0;
  for (std::size_t id = 0; id < v.size(); ++id) total += v.frequency(id);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(VocabTest, DeterministicIdsWithTies) {
  // Equal counts tie-break lexicographically: ids are stable across builds.
  const std::vector<std::vector<std::string>> corpus = {{"zeta", "alpha"}};
  const Vocab a = Vocab::build(corpus);
  const Vocab b = Vocab::build(corpus);
  EXPECT_EQ(a.id("alpha"), b.id("alpha"));
  EXPECT_LT(a.id("alpha"), a.id("zeta"));
}

TEST(VocabTest, NegativeSamplingFollowsPowerLaw) {
  // One dominant word and several rare ones: the dominant word should be
  // sampled more often, but less than its raw frequency share (0.75 power).
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 90; ++i) corpus.push_back({"common"});
  for (int i = 0; i < 10; ++i) corpus.push_back({"rare" + std::to_string(i)});
  const Vocab v = Vocab::build(corpus);
  Rng rng(5);
  std::map<std::size_t, int> counts;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[v.sample_negative(rng)];
  const double common_share =
      static_cast<double>(counts[v.id("common")]) / kDraws;
  // count^0.75 share: 90^.75 / (90^.75 + 10·1) ≈ 0.745
  EXPECT_NEAR(common_share, 0.745, 0.02);
  EXPECT_LT(common_share, 0.9);  // strictly below the raw 0.9 share
}

TEST(VocabTest, RejectsOutOfRange) {
  const Vocab v = Vocab::build(tiny_corpus());
  EXPECT_THROW(v.word(99), std::invalid_argument);
  EXPECT_THROW(v.count(99), std::invalid_argument);
  EXPECT_THROW(v.frequency(99), std::invalid_argument);
}

}  // namespace
}  // namespace eta2::text
