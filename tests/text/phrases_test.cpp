#include "text/phrases.h"

#include <gtest/gtest.h>

namespace eta2::text {
namespace {

std::vector<std::vector<std::string>> collocation_corpus() {
  // "municipal building" always together; "red" and "car" appear often but
  // rarely adjacent. Filler sentences make the collocation words rare
  // relative to the corpus (score · corpus_size ≈ corpus/word frequency).
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 30; ++i) {
    corpus.push_back({"the", "municipal", "building", "is", "open"});
    corpus.push_back({"red", "paint", "on", "a", "car"});
    // Filler keeps the collocation words rare relative to the corpus, and
    // spreads "the"/"is"/"open" around so only "municipal building" scores
    // as a phrase.
    corpus.push_back({"the", "filler", "is", "words", "the", "open",
                      "filler", "the", "is", "words", "open", "the"});
  }
  corpus.push_back({"red", "car"});  // a single adjacency
  return corpus;
}

TEST(PhraseDetectorTest, DetectsStrongCollocations) {
  const auto detector = PhraseDetector::learn(collocation_corpus());
  EXPECT_TRUE(detector.is_phrase("municipal", "building"));
  EXPECT_FALSE(detector.is_phrase("red", "car"));
  EXPECT_FALSE(detector.is_phrase("building", "municipal"));  // order matters
  EXPECT_GE(detector.phrase_count(), 1u);
}

TEST(PhraseDetectorTest, RewriteMergesGreedily) {
  const auto detector = PhraseDetector::learn(collocation_corpus());
  const std::vector<std::string> tokens = {"the", "municipal", "building",
                                           "near", "red", "car"};
  const auto rewritten = detector.rewrite(tokens);
  const std::vector<std::string> expected = {"the", "municipal_building",
                                             "near", "red", "car"};
  EXPECT_EQ(rewritten, expected);
}

TEST(PhraseDetectorTest, ConsumedTokenDoesNotChain) {
  // With phrases {a b} and {b c}, "a b c" must become "a_b c" (b consumed).
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 40; ++i) {
    corpus.push_back({"a", "b", "x"});
    corpus.push_back({"y", "b", "c"});
    corpus.push_back({"pad", "pad", "pad", "pad", "pad", "pad", "pad",
                      "pad", "pad", "pad", "pad", "pad"});
  }
  const auto detector = PhraseDetector::learn(corpus);
  ASSERT_TRUE(detector.is_phrase("a", "b"));
  ASSERT_TRUE(detector.is_phrase("b", "c"));
  const std::vector<std::string> tokens = {"a", "b", "c"};
  const auto rewritten = detector.rewrite(tokens);
  const std::vector<std::string> expected = {"a_b", "c"};
  EXPECT_EQ(rewritten, expected);
}

TEST(PhraseDetectorTest, EmptyCorpusDetectsNothing) {
  const auto detector = PhraseDetector::learn({});
  EXPECT_EQ(detector.phrase_count(), 0u);
  const std::vector<std::string> tokens = {"a", "b"};
  EXPECT_EQ(detector.rewrite(tokens), tokens);
}

TEST(PhraseDetectorTest, DiscountSuppressesRarePairs) {
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 3; ++i) corpus.push_back({"rare", "pair"});
  PhraseOptions options;
  options.discount = 3;  // bigram count (3) <= discount: never merged
  const auto detector = PhraseDetector::learn(corpus, options);
  EXPECT_FALSE(detector.is_phrase("rare", "pair"));
}

TEST(PhraseDetectorTest, RewriteCorpusShape) {
  const auto detector = PhraseDetector::learn(collocation_corpus());
  const auto corpus = collocation_corpus();
  const auto rewritten = detector.rewrite_corpus(corpus);
  ASSERT_EQ(rewritten.size(), corpus.size());
  // The only merge in sentence 0 is "municipal building".
  const std::vector<std::string> expected = {"the", "municipal_building",
                                             "is", "open"};
  EXPECT_EQ(rewritten[0], expected);
}

TEST(PhraseDetectorTest, RejectsBadOptions) {
  PhraseOptions bad;
  bad.threshold = 0.0;
  EXPECT_THROW(PhraseDetector::learn({}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace eta2::text
