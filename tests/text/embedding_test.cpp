#include "text/embedding.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "text/embedder.h"

namespace eta2::text {
namespace {

TEST(EmbeddingOpsTest, DotAndNorm) {
  const Embedding a{1.0, 2.0, 3.0};
  const Embedding b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(norm(a), std::sqrt(14.0));
}

TEST(EmbeddingOpsTest, Distances) {
  const Embedding a{0.0, 0.0};
  const Embedding b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(euclidean_distance(a, a), 0.0);
}

TEST(EmbeddingOpsTest, CosineSimilarity) {
  const Embedding a{1.0, 0.0};
  const Embedding b{0.0, 1.0};
  const Embedding c{2.0, 0.0};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, c), 1.0);
  const Embedding zero{0.0, 0.0};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, zero), 0.0);
}

TEST(EmbeddingOpsTest, DimensionMismatchThrows) {
  const Embedding a{1.0};
  const Embedding b{1.0, 2.0};
  EXPECT_THROW(dot(a, b), std::invalid_argument);
  EXPECT_THROW(squared_distance(a, b), std::invalid_argument);
}

TEST(EmbeddingOpsTest, AddAndScaleInPlace) {
  Embedding a{1.0, 2.0};
  add_in_place(a, Embedding{3.0, -1.0});
  EXPECT_EQ(a, (Embedding{4.0, 1.0}));
  scale_in_place(a, 0.5);
  EXPECT_EQ(a, (Embedding{2.0, 0.5}));
}

TEST(EmbeddingOpsTest, NormalizeInPlace) {
  Embedding a{3.0, 4.0};
  normalize_in_place(a);
  EXPECT_NEAR(norm(a), 1.0, 1e-12);
  EXPECT_NEAR(a[0], 0.6, 1e-12);
  Embedding zero{0.0, 0.0};
  normalize_in_place(zero);  // must not divide by zero
  EXPECT_EQ(zero, (Embedding{0.0, 0.0}));
}

TEST(AdditivePhraseTest, PaperCompositionModel) {
  // V = x1 + x2 + ... (paper §3.2)
  const std::vector<Embedding> words = {{1.0, 0.0}, {0.0, 2.0}, {1.0, 1.0}};
  EXPECT_EQ(additive_phrase(words), (Embedding{2.0, 3.0}));
}

TEST(AdditivePhraseTest, RejectsEmpty) {
  EXPECT_THROW(additive_phrase({}), std::invalid_argument);
}

TEST(HashEmbedderTest, DeterministicPerWord) {
  const HashEmbedder e(16);
  EXPECT_EQ(e.embed_word("noise"), e.embed_word("noise"));
  EXPECT_NE(e.embed_word("noise"), e.embed_word("seminar"));
}

TEST(HashEmbedderTest, UnitNorm) {
  const HashEmbedder e(16);
  EXPECT_NEAR(norm(e.embed_word("anything")), 1.0, 1e-12);
}

TEST(HashEmbedderTest, DistinctWordsNearOrthogonalOnAverage) {
  const HashEmbedder e(64);
  double total = 0.0;
  const std::vector<std::string> words = {"a", "b", "c", "d", "e",
                                          "f", "g", "h", "i", "j"};
  int pairs = 0;
  for (std::size_t i = 0; i < words.size(); ++i) {
    for (std::size_t j = i + 1; j < words.size(); ++j) {
      total += std::fabs(cosine_similarity(e.embed_word(words[i]),
                                           e.embed_word(words[j])));
      ++pairs;
    }
  }
  EXPECT_LT(total / pairs, 0.25);
}

TEST(HashEmbedderTest, SaltChangesVectors) {
  const HashEmbedder a(16, 1);
  const HashEmbedder b(16, 2);
  EXPECT_NE(a.embed_word("noise"), b.embed_word("noise"));
}

TEST(EmbedPhraseTest, SumsWordVectors) {
  const HashEmbedder e(8);
  const std::vector<std::string> phrase = {"municipal", "building"};
  Embedding expected = e.embed_word("municipal");
  add_in_place(expected, e.embed_word("building"));
  EXPECT_EQ(e.embed_phrase(phrase), expected);
}

TEST(EmbedPhraseTest, EmptyPhraseIsZero) {
  const HashEmbedder e(8);
  EXPECT_EQ(e.embed_phrase({}), Embedding(8, 0.0));
}

}  // namespace
}  // namespace eta2::text
