#include "text/pairword.h"

#include <gtest/gtest.h>

#include "text/embedder.h"

namespace eta2::text {
namespace {

TEST(ExtractPairTest, PaperExampleTask1) {
  // "Query: noise level; Target: municipal building"
  const PairWord p =
      extract_pair("What is the noise level around the municipal building?");
  EXPECT_EQ(p.query, (std::vector<std::string>{"noise"}));
  EXPECT_EQ(p.target, (std::vector<std::string>{"municipal", "building"}));
}

TEST(ExtractPairTest, PaperExampleTask2) {
  // "Query: students; Target: seminar" — no preposition, positional split.
  const PairWord p =
      extract_pair("How many students have attended the seminar today?");
  EXPECT_FALSE(p.query.empty());
  EXPECT_FALSE(p.target.empty());
  EXPECT_EQ(p.query.front(), "students");
  EXPECT_EQ(p.target.back(), "seminar");
}

TEST(ExtractPairTest, SplitsAtLastUsablePreposition) {
  const PairWord p = extract_pair("price of coffee at the cafeteria");
  EXPECT_EQ(p.query, (std::vector<std::string>{"price", "coffee"}));
  EXPECT_EQ(p.target, (std::vector<std::string>{"cafeteria"}));
}

TEST(ExtractPairTest, SingleContentWordBecomesQuery) {
  const PairWord p = extract_pair("What is the temperature?");
  EXPECT_EQ(p.query, (std::vector<std::string>{"temperature"}));
  EXPECT_TRUE(p.target.empty());
}

TEST(ExtractPairTest, EmptyDescription) {
  const PairWord p = extract_pair("");
  EXPECT_TRUE(p.query.empty());
  EXPECT_TRUE(p.target.empty());
}

TEST(ExtractPairTest, OnlyStopwords) {
  const PairWord p = extract_pair("what is the and how");
  EXPECT_TRUE(p.query.empty());
  EXPECT_TRUE(p.target.empty());
}

TEST(PrepositionTest, Classification) {
  EXPECT_TRUE(is_preposition("around"));
  EXPECT_TRUE(is_preposition("near"));
  EXPECT_TRUE(is_preposition("of"));
  EXPECT_FALSE(is_preposition("noise"));
}

TEST(SemanticVectorTest, ConcatenatesQueryAndTargetBlocks) {
  const HashEmbedder embedder(8);
  PairWord p;
  p.query = {"noise"};
  p.target = {"park"};
  const Embedding v = semantic_vector(p, embedder);
  ASSERT_EQ(v.size(), 16u);
  const Embedding q = embedder.embed_word("noise");
  const Embedding t = embedder.embed_word("park");
  for (std::size_t d = 0; d < 8; ++d) {
    EXPECT_DOUBLE_EQ(v[d], q[d]);
    EXPECT_DOUBLE_EQ(v[8 + d], t[d]);
  }
}

TEST(SemanticVectorTest, EmptyTermContributesZeroBlock) {
  const HashEmbedder embedder(4);
  PairWord p;
  p.query = {"noise"};
  const Embedding v = semantic_vector(p, embedder);
  for (std::size_t d = 4; d < 8; ++d) EXPECT_DOUBLE_EQ(v[d], 0.0);
}

TEST(TaskDistanceTest, PaperEq2) {
  // E = ½(||ΔQ||² + ||ΔT||²) over the concatenated halves.
  const Embedding a{1.0, 0.0, /*target*/ 0.0, 0.0};
  const Embedding b{0.0, 0.0, /*target*/ 3.0, 4.0};
  EXPECT_DOUBLE_EQ(task_distance(a, b), 0.5 * (1.0 + 25.0));
}

TEST(TaskDistanceTest, IdenticalTasksAreAtZero) {
  const HashEmbedder embedder(8);
  const Embedding v = semantic_vector("noise near the park", embedder);
  EXPECT_DOUBLE_EQ(task_distance(v, v), 0.0);
}

TEST(TaskDistanceTest, SharedTermsReduceDistance) {
  const HashEmbedder embedder(16);
  const Embedding same_query_a =
      semantic_vector("noise near the park", embedder);
  const Embedding same_query_b =
      semantic_vector("noise near the reservoir", embedder);
  const Embedding different =
      semantic_vector("salary at the bank", embedder);
  EXPECT_LT(task_distance(same_query_a, same_query_b),
            task_distance(same_query_a, different));
}

TEST(TaskDistanceTest, RejectsBadShapes) {
  const Embedding a{1.0, 2.0};
  const Embedding b{1.0, 2.0, 3.0};
  EXPECT_THROW(task_distance(a, b), std::invalid_argument);
  const Embedding odd{1.0, 2.0, 3.0};
  EXPECT_THROW(task_distance(odd, odd), std::invalid_argument);
}

TEST(TaskDistanceTest, SymmetricAndNonNegative) {
  const HashEmbedder embedder(8);
  const Embedding a = semantic_vector("traffic near the bridge", embedder);
  const Embedding b = semantic_vector("patients at the clinic", embedder);
  EXPECT_DOUBLE_EQ(task_distance(a, b), task_distance(b, a));
  EXPECT_GE(task_distance(a, b), 0.0);
}

}  // namespace
}  // namespace eta2::text
