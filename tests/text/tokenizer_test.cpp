#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace eta2::text {
namespace {

TEST(TokenizerTest, LowercasesAndStripsPunctuation) {
  const auto tokens = tokenize("What is the Noise-Level, really?");
  const std::vector<std::string> expected = {"what", "is",    "the",
                                             "noise", "level", "really"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizerTest, KeepsDigits) {
  // Alphanumeric runs stay together ("9am" is one token).
  const auto tokens = tokenize("room 205 opens at 9am");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[1], "205");
  EXPECT_EQ(tokens[4], "9am");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("?!... ,,,").empty());
}

TEST(StopwordTest, CommonWordsAreStopwords) {
  EXPECT_TRUE(is_stopword("what"));
  EXPECT_TRUE(is_stopword("the"));
  EXPECT_TRUE(is_stopword("is"));
  EXPECT_TRUE(is_stopword("how"));
  EXPECT_TRUE(is_stopword("many"));
}

TEST(StopwordTest, ContentWordsAreNot) {
  EXPECT_FALSE(is_stopword("noise"));
  EXPECT_FALSE(is_stopword("municipal"));
  EXPECT_FALSE(is_stopword("students"));
  EXPECT_FALSE(is_stopword("seminar"));
}

TEST(ContentWordsTest, PaperExampleTask1) {
  // "What is the noise level around the municipal building?"
  const auto words = content_words(
      "What is the noise level around the municipal building?");
  // Scaffolding removed; domain-bearing words kept.
  EXPECT_EQ(words, (std::vector<std::string>{"noise", "municipal", "building"}));
}

TEST(ContentWordsTest, PaperExampleTask2) {
  const auto words =
      content_words("How many students have attended the seminar today?");
  EXPECT_EQ(words, (std::vector<std::string>{"students", "attended", "seminar"}));
}

TEST(ContentWordsTest, AllStopwordsYieldsEmpty) {
  EXPECT_TRUE(content_words("what is the how many").empty());
}

}  // namespace
}  // namespace eta2::text
