#include "text/corpus.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "text/lexicon.h"

namespace eta2::text {
namespace {

TEST(LexiconTest, HasTenTopicsWithWords) {
  EXPECT_EQ(topic_count(), 10u);
  for (const Topic& t : topics()) {
    EXPECT_FALSE(t.name.empty());
    EXPECT_GE(t.query_words.size(), 5u);
    EXPECT_GE(t.target_words.size(), 5u);
  }
}

TEST(LexiconTest, TopicWordsAreDisjointAcrossTopics) {
  std::set<std::string_view> seen;
  std::size_t total = 0;
  for (const Topic& t : topics()) {
    for (const auto w : t.query_words) {
      seen.insert(w);
      ++total;
    }
    for (const auto w : t.target_words) {
      seen.insert(w);
      ++total;
    }
  }
  // Small overlap is tolerable (e.g. "queue" and "seats" repeat), but the
  // lexicon must be essentially disjoint for clustering to recover topics.
  EXPECT_GE(seen.size(), total - 4);
}

TEST(CorpusTest, DeterministicForSeed) {
  const CorpusOptions options{.sentences_per_topic = 20};
  EXPECT_EQ(generate_corpus(options, 3), generate_corpus(options, 3));
}

TEST(CorpusTest, DifferentSeedsDiffer) {
  const CorpusOptions options{.sentences_per_topic = 20};
  EXPECT_NE(generate_corpus(options, 3), generate_corpus(options, 4));
}

TEST(CorpusTest, SizeAndSentenceLengths) {
  CorpusOptions options;
  options.sentences_per_topic = 25;
  options.min_sentence_words = 4;
  options.max_sentence_words = 9;
  const auto corpus = generate_corpus(options, 1);
  EXPECT_EQ(corpus.size(), 25u * topic_count());
  for (const auto& sentence : corpus) {
    EXPECT_GE(sentence.size(), 4u);
    EXPECT_LE(sentence.size(), 9u);
  }
}

TEST(CorpusTest, CoversEveryTopicVocabulary) {
  CorpusOptions options;
  options.sentences_per_topic = 200;
  const auto corpus = generate_corpus(options, 2);
  std::set<std::string> words;
  for (const auto& sentence : corpus) {
    words.insert(sentence.begin(), sentence.end());
  }
  // Every topic must contribute at least half its query words.
  for (const Topic& t : topics()) {
    std::size_t found = 0;
    for (const auto w : t.query_words) {
      if (words.contains(std::string(w))) ++found;
    }
    EXPECT_GE(found, t.query_words.size() / 2) << t.name;
  }
}

TEST(CorpusTest, RejectsBadOptions) {
  CorpusOptions bad;
  bad.min_sentence_words = 1;
  EXPECT_THROW(generate_corpus(bad, 1), std::invalid_argument);
  CorpusOptions inverted;
  inverted.min_sentence_words = 8;
  inverted.max_sentence_words = 4;
  EXPECT_THROW(generate_corpus(inverted, 1), std::invalid_argument);
}

}  // namespace
}  // namespace eta2::text
