#include "text/skipgram.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "text/corpus.h"
#include "text/lexicon.h"

namespace eta2::text {
namespace {

// A fixture that trains one small model for all tests in the suite
// (training is deterministic, so sharing is safe).
class SkipGramFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusOptions corpus_options;
    corpus_options.sentences_per_topic = 200;
    const auto corpus = generate_corpus(corpus_options, 11);
    SkipGramOptions options;
    options.dimension = 24;
    options.epochs = 3;
    model_ = new SkipGramModel(SkipGramModel::train(corpus, options, 11));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }
  static SkipGramModel* model_;
};

SkipGramModel* SkipGramFixture::model_ = nullptr;

TEST_F(SkipGramFixture, DimensionAndVocab) {
  EXPECT_EQ(model_->dimension(), 24u);
  EXPECT_GT(model_->vocab().size(), 50u);
}

TEST_F(SkipGramFixture, EmbeddingsHaveRightDimension) {
  EXPECT_EQ(model_->embed_word("traffic").size(), 24u);
  EXPECT_EQ(model_->embed_word("totally-unseen-token").size(), 24u);
}

TEST_F(SkipGramFixture, SameTopicWordsAreCloserThanCrossTopic) {
  // Aggregate check: mean within-topic similarity must exceed mean
  // cross-topic similarity — the property dynamic clustering relies on.
  const auto all = topics();
  double within = 0.0;
  int within_n = 0;
  double cross = 0.0;
  int cross_n = 0;
  for (std::size_t a = 0; a < all.size(); ++a) {
    for (std::size_t i = 0; i < all[a].query_words.size(); ++i) {
      for (std::size_t j = i + 1; j < all[a].query_words.size(); ++j) {
        within += model_->similarity(all[a].query_words[i],
                                     all[a].query_words[j]);
        ++within_n;
      }
      const std::size_t b = (a + 1) % all.size();
      for (std::size_t j = 0; j < all[b].query_words.size(); ++j) {
        cross += model_->similarity(all[a].query_words[i],
                                    all[b].query_words[j]);
        ++cross_n;
      }
    }
  }
  const double mean_within = within / within_n;
  const double mean_cross = cross / cross_n;
  EXPECT_GT(mean_within, mean_cross + 0.1)
      << "within=" << mean_within << " cross=" << mean_cross;
}

TEST_F(SkipGramFixture, NearestNeighborsShareTopic) {
  // For "traffic" (transport topic), most of the 5 nearest words should be
  // transport words.
  const auto neighbors = model_->nearest("traffic", 5);
  ASSERT_EQ(neighbors.size(), 5u);
  const Topic& transport = topics()[0];
  int hits = 0;
  for (const auto& n : neighbors) {
    const bool in_topic =
        std::any_of(transport.query_words.begin(), transport.query_words.end(),
                    [&](std::string_view w) { return w == n; }) ||
        std::any_of(transport.target_words.begin(),
                    transport.target_words.end(),
                    [&](std::string_view w) { return w == n; });
    if (in_topic) ++hits;
  }
  EXPECT_GE(hits, 3) << "neighbors of 'traffic' off-topic";
}

TEST_F(SkipGramFixture, SimilarityIsSymmetricAndBounded) {
  const double ab = model_->similarity("traffic", "parking");
  const double ba = model_->similarity("parking", "traffic");
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_LE(ab, 1.0);
  EXPECT_GE(ab, -1.0);
  EXPECT_DOUBLE_EQ(model_->similarity("traffic", "traffic"), 1.0);
}

TEST_F(SkipGramFixture, OovWordsFallBackDeterministically) {
  EXPECT_EQ(model_->embed_word("zzzz-unknown"), model_->embed_word("zzzz-unknown"));
  EXPECT_DOUBLE_EQ(model_->similarity("zzzz-unknown", "traffic"), 0.0);
  EXPECT_TRUE(model_->nearest("zzzz-unknown", 3).empty());
}

TEST(SkipGramTrainTest, DeterministicForSeed) {
  CorpusOptions corpus_options;
  corpus_options.sentences_per_topic = 30;
  const auto corpus = generate_corpus(corpus_options, 5);
  SkipGramOptions options;
  options.dimension = 8;
  options.epochs = 1;
  const auto a = SkipGramModel::train(corpus, options, 5);
  const auto b = SkipGramModel::train(corpus, options, 5);
  EXPECT_EQ(a.embed_word("traffic"), b.embed_word("traffic"));
}

TEST(SkipGramTrainTest, RejectsBadOptions) {
  const std::vector<std::vector<std::string>> corpus = {{"a", "b"}, {"a", "b"}};
  SkipGramOptions zero_dim;
  zero_dim.dimension = 0;
  EXPECT_THROW(SkipGramModel::train(corpus, zero_dim, 1), std::invalid_argument);
  SkipGramOptions zero_epochs;
  zero_epochs.epochs = 0;
  EXPECT_THROW(SkipGramModel::train(corpus, zero_epochs, 1),
               std::invalid_argument);
}

TEST(SkipGramTrainTest, RejectsTinyVocabulary) {
  const std::vector<std::vector<std::string>> corpus = {{"only", "once"}};
  SkipGramOptions options;
  options.min_count = 5;  // prunes everything
  EXPECT_THROW(SkipGramModel::train(corpus, options, 1), std::invalid_argument);
}

}  // namespace
}  // namespace eta2::text
