#include "text/embedding_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "text/corpus.h"

namespace eta2::text {
namespace {

SkipGramModel small_model() {
  CorpusOptions corpus_options;
  corpus_options.sentences_per_topic = 40;
  const auto corpus = generate_corpus(corpus_options, 13);
  SkipGramOptions options;
  options.dimension = 12;
  options.epochs = 1;
  return SkipGramModel::train(corpus, options, 13);
}

TEST(EmbeddingIoTest, SaveLoadRoundTrip) {
  const SkipGramModel model = small_model();
  std::ostringstream out;
  save_embeddings(model, out);
  std::istringstream in(out.str());
  const StoredEmbedder loaded = load_embeddings(in);
  EXPECT_EQ(loaded.size(), model.vocab().size());
  EXPECT_EQ(loaded.dimension(), model.dimension());
  for (const char* word : {"traffic", "salary", "noise"}) {
    ASSERT_TRUE(loaded.contains(word)) << word;
    const Embedding original = model.embed_word(word);
    const Embedding restored = loaded.embed_word(word);
    ASSERT_EQ(restored.size(), original.size());
    for (std::size_t d = 0; d < original.size(); ++d) {
      EXPECT_DOUBLE_EQ(restored[d], original[d]) << word << " dim " << d;
    }
  }
}

TEST(EmbeddingIoTest, OovFallsBackDeterministically) {
  std::unordered_map<std::string, Embedding> table;
  table["known"] = {1.0, 2.0};
  const StoredEmbedder embedder(std::move(table));
  EXPECT_FALSE(embedder.contains("unknown"));
  const Embedding a = embedder.embed_word("unknown");
  const Embedding b = embedder.embed_word("unknown");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(EmbeddingIoTest, RejectsEmptyOrInconsistentTables) {
  EXPECT_THROW(StoredEmbedder({}), std::invalid_argument);
  std::unordered_map<std::string, Embedding> bad;
  bad["a"] = {1.0};
  bad["b"] = {1.0, 2.0};
  EXPECT_THROW(StoredEmbedder(std::move(bad)), std::invalid_argument);
}

TEST(EmbeddingIoTest, RejectsMalformedDocuments) {
  const auto load = [](const std::string& text) {
    std::istringstream in(text);
    return load_embeddings(in);
  };
  EXPECT_THROW(load(""), std::invalid_argument);
  EXPECT_THROW(load("garbage\n"), std::invalid_argument);
  EXPECT_THROW(load("2 2\nword 1.0 2.0\n"), std::invalid_argument);  // truncated
  EXPECT_THROW(load("1 3\nword 1.0 2.0\n"), std::invalid_argument);  // narrow
  EXPECT_THROW(load("1 1\nword 1.0 2.0\n"), std::invalid_argument);  // wide
  EXPECT_THROW(load("2 1\nword 1.0\nword 2.0\n"), std::invalid_argument);
}

TEST(EmbeddingIoTest, LoadedEmbedderPreservesSimilarityStructure) {
  const SkipGramModel model = small_model();
  std::ostringstream out;
  save_embeddings(model, out);
  std::istringstream in(out.str());
  const StoredEmbedder loaded = load_embeddings(in);
  // Same-topic words stay closer than cross-topic ones after the round trip.
  const double within = cosine_similarity(loaded.embed_word("traffic"),
                                          loaded.embed_word("parking"));
  const double cross = cosine_similarity(loaded.embed_word("traffic"),
                                         loaded.embed_word("vaccines"));
  EXPECT_GT(within, cross);
}

}  // namespace
}  // namespace eta2::text
