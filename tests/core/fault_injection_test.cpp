// Fault-injection suite: the deterministic FaultPlan must inject exactly
// what it says (counter-based decisions, order-independent), and the staged
// pipeline must absorb every injected fault into StepHealth instead of
// throwing — ending with the ISSUE's acceptance scenario, a 10-day faulted
// campaign whose health ledger reconciles with the plan's FaultStats.
#include "common/fault.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/eta2_server.h"
#include "core/step_context.h"
#include "core/truth_updaters.h"
#include "sim/dataset.h"
#include "sim/simulation.h"
#include "text/embedder.h"
#include "text/faulty_embedder.h"
#include "truth/expertise_store.h"

namespace eta2 {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FaultPlanTest, DecisionsAreDeterministicAcrossPlanInstances) {
  fault::FaultOptions options;
  options.seed = 99;
  options.dropout_rate = 0.4;
  options.embedder_failure_rate = 0.3;
  options.fabricator_fraction = 0.25;
  options.empty_batch_rate = 0.2;
  fault::FaultPlan a(options);
  fault::FaultPlan b(options);
  for (std::uint64_t step = 0; step < 20; ++step) {
    a.begin_step(step);
    b.begin_step(step);
    EXPECT_EQ(a.drop_batch(), b.drop_batch()) << "step " << step;
    EXPECT_EQ(a.embedder_down(), b.embedder_down()) << "step " << step;
    for (std::size_t user = 0; user < 30; ++user) {
      EXPECT_EQ(a.user_dropped(user), b.user_dropped(user));
      EXPECT_EQ(a.user_fabricates(user), b.user_fabricates(user));
    }
  }
  // Fabricator status is a persistent per-user trait: step-independent.
  a.begin_step(3);
  const bool at_three = a.user_fabricates(7);
  a.begin_step(17);
  EXPECT_EQ(a.user_fabricates(7), at_three);
}

TEST(FaultPlanTest, WrappedCollectIsCallOrderIndependent) {
  fault::FaultOptions options;
  options.seed = 5;
  options.nan_rate = 0.2;
  options.outlier_rate = 0.2;
  options.dropout_rate = 0.2;
  const auto run = [&](bool reversed) {
    fault::FaultPlan plan(options);
    const fault::ObserveFn wrapped =
        plan.wrap_collect([](std::size_t task, std::size_t user) {
          return std::optional<double>(static_cast<double>(task * 100 + user));
        });
    plan.begin_step(2);
    std::vector<std::optional<double>> values(10 * 6);
    for (std::size_t k = 0; k < values.size(); ++k) {
      const std::size_t idx = reversed ? values.size() - 1 - k : k;
      values[idx] = wrapped(idx / 6, idx % 6);
    }
    return values;
  };
  const auto forward = run(false);
  const auto backward = run(true);
  for (std::size_t k = 0; k < forward.size(); ++k) {
    ASSERT_EQ(forward[k].has_value(), backward[k].has_value()) << k;
    if (forward[k].has_value()) {
      // Bitwise: NaN-injected slots must match too.
      const double x = *forward[k];
      const double y = *backward[k];
      EXPECT_TRUE((std::isnan(x) && std::isnan(y)) || x == y) << k;
    }
  }
}

TEST(FaultPlanTest, CertainCorruptionRatesInjectEveryObservation) {
  fault::FaultOptions options;
  options.seed = 1;
  options.nan_rate = 1.0;
  fault::FaultPlan plan(options);
  const fault::ObserveFn wrapped = plan.wrap_collect(
      [](std::size_t, std::size_t) { return std::optional<double>(4.0); });
  plan.begin_step(0);
  for (std::size_t k = 0; k < 10; ++k) {
    const auto v = wrapped(k, 0);
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(std::isnan(*v));
  }
  EXPECT_EQ(plan.stats().observations_seen, 10u);
  EXPECT_EQ(plan.stats().nan_injected, 10u);
}

TEST(FaultPlanTest, CertainDropoutSuppressesEveryObservation) {
  fault::FaultOptions options;
  options.seed = 2;
  options.dropout_rate = 1.0;
  fault::FaultPlan plan(options);
  const fault::ObserveFn wrapped = plan.wrap_collect(
      [](std::size_t, std::size_t) { return std::optional<double>(4.0); });
  plan.begin_step(0);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_FALSE(wrapped(0, k).has_value());
  }
  EXPECT_EQ(plan.stats().dropouts, 8u);
  EXPECT_EQ(plan.stats().nan_injected, 0u);
}

TEST(FaultPlanTest, FabricatorsReportBoundedOffsets) {
  fault::FaultOptions options;
  options.seed = 3;
  options.fabricator_fraction = 1.0;
  fault::FaultPlan plan(options);
  const fault::ObserveFn wrapped = plan.wrap_collect(
      [](std::size_t, std::size_t) { return std::optional<double>(10.0); });
  plan.begin_step(0);
  for (std::size_t user = 0; user < 12; ++user) {
    const auto v = wrapped(0, user);
    ASSERT_TRUE(v.has_value());
    const double offset = std::fabs(*v - 10.0);
    EXPECT_GE(offset, options.fabricator_offset_lo);
    EXPECT_LE(offset, options.fabricator_offset_hi);
  }
  EXPECT_EQ(plan.stats().fabricated, 12u);
}

TEST(FaultPlanTest, FaultyEmbedderThrowsOnOutageStepsOnly) {
  fault::FaultOptions options;
  options.seed = 8;
  options.embedder_failure_rate = 0.5;
  fault::FaultPlan plan(options);
  const auto wrapped =
      text::wrap_embedder(std::make_shared<text::HashEmbedder>(16), &plan);
  bool saw_up = false;
  bool saw_down = false;
  for (std::uint64_t step = 0; step < 32 && !(saw_up && saw_down); ++step) {
    plan.begin_step(step);
    if (plan.embedder_down()) {
      saw_down = true;
      EXPECT_THROW(wrapped->embed_word("coffee"), text::EmbedderError);
    } else {
      saw_up = true;
      EXPECT_NO_THROW(wrapped->embed_word("coffee"));
    }
  }
  EXPECT_TRUE(saw_up);
  EXPECT_TRUE(saw_down);
  EXPECT_GT(plan.stats().embedder_failures, 0u);
}

TEST(SanitizingCollectTest, QuarantinesAndCountsEveryOutcome) {
  const std::vector<std::optional<double>> stream = {
      1.0, kNan, kInf, 2.5e3, std::nullopt, -3.0};
  const core::CollectFn inner = [&](std::size_t j, std::size_t) {
    return stream[j];
  };
  core::StepHealth health;
  const core::CollectFn safe = core::sanitizing_collect(inner, 100.0, health);
  std::vector<std::optional<double>> out;
  for (std::size_t j = 0; j < stream.size(); ++j) out.push_back(safe(j, 0));

  EXPECT_EQ(health.pairs_asked, 6u);
  EXPECT_EQ(health.observations_accepted, 2u);
  EXPECT_EQ(health.rejected_nonfinite, 2u);
  EXPECT_EQ(health.rejected_out_of_range, 1u);
  EXPECT_EQ(health.silent_pairs, 1u);
  EXPECT_TRUE(health.degraded());

  // Clean values pass through untouched; everything else is a non-response.
  EXPECT_EQ(out[0], std::optional<double>(1.0));
  EXPECT_EQ(out[5], std::optional<double>(-3.0));
  for (const std::size_t j : {1u, 2u, 3u, 4u}) {
    EXPECT_FALSE(out[j].has_value()) << j;
  }
}

TEST(SanitizingCollectTest, ZeroLimitDisablesRangeCheck) {
  const core::CollectFn inner = [](std::size_t, std::size_t) {
    return std::optional<double>(2.5e3);
  };
  core::StepHealth health;
  const core::CollectFn safe = core::sanitizing_collect(inner, 0.0, health);
  EXPECT_EQ(safe(0, 0), std::optional<double>(2.5e3));
  EXPECT_EQ(health.rejected_out_of_range, 0u);
  EXPECT_EQ(health.observations_accepted, 1u);
  EXPECT_FALSE(health.degraded());
}

TEST(StepHealthTest, MergeSumsCountersAndOrsFlags) {
  core::StepHealth a;
  a.pairs_asked = 3;
  a.rejected_nonfinite = 1;
  core::StepHealth b;
  b.pairs_asked = 4;
  b.truth_fallback = true;
  b.empty_batch = true;
  a.merge(b);
  EXPECT_EQ(a.pairs_asked, 7u);
  EXPECT_EQ(a.rejected_nonfinite, 1u);
  EXPECT_TRUE(a.truth_fallback);
  EXPECT_TRUE(a.empty_batch);
}

// --- server-level degradation -------------------------------------------

std::vector<core::NewTask> described_batch(std::size_t count) {
  const char* descriptions[] = {"price of coffee downtown",
                                "queue length at the cafeteria",
                                "noise level in the library",
                                "wifi speed in the lab"};
  std::vector<core::NewTask> batch;
  for (std::size_t j = 0; j < count; ++j) {
    core::NewTask t;
    t.description = descriptions[j % 4];
    batch.push_back(t);
  }
  return batch;
}

TEST(ServerDegradationTest, EmbedderOutageRoutesTasksToUnknownDomain) {
  fault::FaultOptions options;
  options.seed = 4;
  options.embedder_failure_rate = 1.0;  // every step is an outage
  fault::FaultPlan plan(options);
  const auto embedder =
      text::wrap_embedder(std::make_shared<text::HashEmbedder>(16), &plan);

  const std::size_t users = 6;
  core::Eta2Server server(users, core::Eta2Config{}, embedder);
  EXPECT_FALSE(server.unknown_domain().has_value());

  plan.begin_step(0);
  const auto batch = described_batch(4);
  const std::vector<double> caps(users, 12.0);
  Rng rng(1);
  Rng observe(2);
  const auto result = server.step(
      batch, caps,
      [&](std::size_t, std::size_t) {
        return std::optional<double>(observe.normal(10.0, 1.0));
      },
      rng);

  EXPECT_TRUE(result.health.identifier_failed);
  EXPECT_EQ(result.health.domain_fallback_tasks, batch.size());
  EXPECT_TRUE(result.health.degraded());
  ASSERT_TRUE(server.unknown_domain().has_value());
  // The step still produced estimates for the quarantined-domain tasks.
  ASSERT_EQ(result.truth.size(), batch.size());
  for (const double mu : result.truth) EXPECT_TRUE(std::isfinite(mu));

  // The catch-all domain survives a save/load round trip byte-for-byte.
  std::ostringstream first;
  server.save(first);
  std::istringstream in(first.str());
  const core::Eta2Server restored =
      core::Eta2Server::load(in, core::Eta2Config{}, embedder);
  ASSERT_TRUE(restored.unknown_domain().has_value());
  EXPECT_EQ(*restored.unknown_domain(), *server.unknown_domain());
  std::ostringstream second;
  restored.save(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(ServerDegradationTest, EmptyBatchIsRecordedNotFatal) {
  core::Eta2Server server(4, core::Eta2Config{}, nullptr);
  const std::vector<core::NewTask> batch;
  const std::vector<double> caps(4, 10.0);
  Rng rng(3);
  const auto result = server.step(
      batch, caps,
      [](std::size_t, std::size_t) { return std::optional<double>(1.0); },
      rng);
  EXPECT_TRUE(result.health.empty_batch);
  EXPECT_TRUE(result.truth.empty());
  EXPECT_FALSE(server.warmed_up());
}

class ExplodingUpdater final : public core::TruthUpdater {
 public:
  [[nodiscard]] std::string_view name() const override { return "exploding"; }
  void update(core::StepContext&) override {
    throw NumericalError("synthetic non-convergence");
  }
};

class MiswiredUpdater final : public core::TruthUpdater {
 public:
  [[nodiscard]] std::string_view name() const override { return "miswired"; }
  void update(core::StepContext&) override {
    throw std::logic_error("programming error, must propagate");
  }
};

TEST(ServerDegradationTest, NumericalErrorFallsBackWithoutCommitting) {
  const std::size_t users = 5;
  const std::size_t tasks = 3;
  truth::ExpertiseStore store(users);
  store.add_domain();
  const truth::Eta2Mle mle;

  core::StepContext ctx;
  ctx.store = &store;
  ctx.mle = &mle;
  ctx.task_domains.assign(tasks, 0);
  ctx.observations = truth::ObservationSet(users, tasks);
  Rng rng(6);
  for (std::size_t j = 0; j < tasks; ++j) {
    for (std::size_t i = 0; i < users; ++i) {
      ctx.observations.add(j, i, rng.normal(5.0 + static_cast<double>(j), 0.5));
    }
  }

  const auto before = store.snapshot();
  ExplodingUpdater exploding;
  core::update_with_fallback(exploding, ctx);

  EXPECT_TRUE(ctx.health.truth_fallback);
  EXPECT_EQ(ctx.mle_iterations, 0);
  ASSERT_EQ(ctx.truth.size(), tasks);
  for (std::size_t j = 0; j < tasks; ++j) {
    EXPECT_NEAR(ctx.truth[j], 5.0 + static_cast<double>(j), 1.0) << j;
  }
  // The degraded step must NOT contaminate the learned expertise.
  EXPECT_EQ(store.snapshot(), before);

  // Only NumericalError degrades; programming errors still propagate.
  MiswiredUpdater miswired;
  EXPECT_THROW(core::update_with_fallback(miswired, ctx), std::logic_error);
}

// --- the ISSUE's acceptance scenario ------------------------------------

TEST(FaultInjectionAcceptanceTest, TenDayFaultedCampaignReconcilesLedgers) {
  sim::SurveyOptions survey;
  survey.users = 24;
  survey.tasks = 80;
  survey.days = 10;
  const sim::Dataset dataset = sim::make_survey_like(survey, 33);

  sim::SimOptions options;
  options.embedder = std::make_shared<text::HashEmbedder>(24);
  options.config.observation_abs_limit = 1e6;
  options.fault.seed = 7;
  options.fault.nan_rate = 0.05;
  options.fault.inf_rate = 0.02;
  options.fault.outlier_rate = 0.03;
  options.fault.outlier_scale = 1e9;  // far beyond the abs limit
  options.fault.dropout_rate = 0.30;
  options.fault.embedder_failure_rate = 0.30;
  options.fault.empty_batch_rate = 0.10;

  // The campaign must complete without throwing.
  const sim::SimulationResult run = sim::simulate(dataset, "eta2", options, 5);
  ASSERT_EQ(run.days.size(), static_cast<std::size_t>(survey.days));
  ASSERT_EQ(run.day_health.size(), run.days.size());
  EXPECT_TRUE(std::isfinite(run.overall_error));

  // Every fault class actually fired under this seed.
  const fault::FaultStats& f = run.fault_stats;
  EXPECT_GT(f.nan_injected, 0u);
  EXPECT_GT(f.inf_injected, 0u);
  EXPECT_GT(f.outliers_injected, 0u);
  EXPECT_GT(f.dropouts, 0u);
  EXPECT_GT(f.batches_dropped, 0u);
  EXPECT_GT(f.embedder_failures, 0u);

  // ... and the pipeline accounted for every one of them.
  const core::StepHealth& h = run.health;
  EXPECT_EQ(f.observations_seen, h.pairs_asked);
  EXPECT_EQ(f.nan_injected + f.inf_injected, h.rejected_nonfinite);
  EXPECT_EQ(f.outliers_injected, h.rejected_out_of_range);
  // The sim's observe() always answers, so every silent pair is injected.
  EXPECT_EQ(f.dropouts + f.no_responses, h.silent_pairs);
  EXPECT_EQ(h.pairs_asked, h.observations_accepted + h.rejected_nonfinite +
                               h.rejected_out_of_range + h.silent_pairs);

  std::size_t empty_days = 0;
  for (const auto& day : run.day_health) empty_days += day.empty_batch ? 1 : 0;
  EXPECT_EQ(f.batches_dropped, empty_days);

  EXPECT_TRUE(h.identifier_failed);
  EXPECT_GT(h.domain_fallback_tasks, 0u);
  EXPECT_TRUE(h.degraded());
}

TEST(FaultInjectionAcceptanceTest, CleanRunReportsCleanLedgers) {
  sim::SyntheticOptions synthetic;
  synthetic.users = 15;
  synthetic.tasks = 40;
  synthetic.domains = 3;
  synthetic.days = 3;
  const sim::Dataset dataset = sim::make_synthetic(synthetic, 9);
  const sim::SimOptions options;  // fault.any() == false
  const sim::SimulationResult run = sim::simulate(dataset, "eta2", options, 9);
  EXPECT_FALSE(run.health.degraded());
  EXPECT_EQ(run.health.rejected_nonfinite, 0u);
  EXPECT_EQ(run.health.silent_pairs, 0u);
  EXPECT_EQ(run.fault_stats.observations_seen, 0u);  // no plan built
  EXPECT_GT(run.health.observations_accepted, 0u);
  EXPECT_EQ(run.health.pairs_asked, run.health.observations_accepted);
}

}  // namespace
}  // namespace eta2
