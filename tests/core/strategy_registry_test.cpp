// Registry coverage: the built-in stage names, unknown-name error paths,
// and a full Eta2Server::step round-trip for every registered allocation
// strategy and truth updater.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/eta2_server.h"
#include "core/strategy_registry.h"
#include "core/truth_updaters.h"
#include "golden_scenarios.h"
#include "sim/method_registry.h"
#include "truth/truth_registry.h"

namespace eta2 {
namespace {

std::vector<core::NewTask> labeled_batch() {
  std::vector<core::NewTask> batch(5);
  for (std::size_t t = 0; t < batch.size(); ++t) {
    batch[t].known_domain = t % 3;
    batch[t].processing_time = 1.0 + 0.25 * static_cast<double>(t);
    batch[t].cost = 1.0;
  }
  return batch;
}

TEST(StrategyRegistryTest, BuiltinsRegistered) {
  const auto identifiers = core::domain_identifiers().names();
  EXPECT_EQ(identifiers, (std::vector<std::string>{
                             "known-label", "pairword-clustering",
                             "phrase-clustering"}));
  const auto allocators = core::allocation_strategies().names();
  EXPECT_EQ(allocators, (std::vector<std::string>{
                            "max-quality", "min-cost", "random",
                            "reliability-greedy"}));
  const auto updaters = core::truth_updaters().names();
  EXPECT_EQ(updaters, (std::vector<std::string>{"dynamic", "warmup-mle"}));
  const auto truth_methods = truth::truth_method_names();
  EXPECT_EQ(truth_methods,
            (std::vector<std::string>{"avglog", "em", "hubs", "mean", "median",
                                      "truthfinder"}));
}

TEST(StrategyRegistryTest, ConstructedStagesReportTheirRegistryName) {
  const core::Eta2Config config;
  for (const std::string& name : core::allocation_strategies().names()) {
    EXPECT_EQ(core::make_allocation_strategy(name, config)->name(), name);
  }
  for (const std::string& name : core::truth_updaters().names()) {
    EXPECT_EQ(core::make_truth_updater(name, config)->name(), name);
  }
  for (const std::string& name : core::domain_identifiers().names()) {
    EXPECT_EQ(core::make_domain_identifier(name, config)->name(), name);
  }
}

TEST(StrategyRegistryTest, UnknownNamesThrowListingKnown) {
  const core::Eta2Config config;
  EXPECT_THROW(core::make_allocation_strategy("no-such-allocator", config),
               std::invalid_argument);
  EXPECT_THROW(core::make_truth_updater("no-such-updater", config),
               std::invalid_argument);
  EXPECT_THROW(core::make_domain_identifier("no-such-identifier", config),
               std::invalid_argument);
  EXPECT_THROW(truth::make_truth_method("no-such-method"),
               std::invalid_argument);
  EXPECT_THROW(sim::method_spec("no-such-method"), std::invalid_argument);
  try {
    (void)core::make_allocation_strategy("no-such-allocator", config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-allocator"), std::string::npos);
    EXPECT_NE(what.find("max-quality"), std::string::npos)
        << "error should list the registered names: " << what;
  }
}

TEST(StrategyRegistryTest, UnknownConfigNamesSurfaceAtServerConstruction) {
  core::Eta2Config config;
  config.allocator = "definitely-not-registered";
  EXPECT_THROW(core::Eta2Server(3, config, nullptr), std::invalid_argument);
  core::Eta2Config bad_truth;
  bad_truth.truth_updater = "definitely-not-registered";
  EXPECT_THROW(core::Eta2Server(3, bad_truth, nullptr), std::invalid_argument);
}

TEST(StrategyRegistryTest, DuplicateRegistrationThrows) {
  Registry<core::TruthUpdater, const core::Eta2Config&> registry;
  const auto factory = [](const core::Eta2Config& c) {
    return std::make_unique<core::DynamicTruthUpdater>(c);
  };
  registry.add("dup", factory);
  EXPECT_THROW(registry.add("dup", factory), std::invalid_argument);
}

// Every registered allocator must drive a full warm-up + steady-state step
// sequence through the server.
TEST(StrategyRegistryTest, EveryAllocatorRoundTripsThroughServerStep) {
  for (const std::string& name : core::allocation_strategies().names()) {
    core::Eta2Config config;
    config.allocator = name;
    config.cost_per_iteration = 8.0;  // keep min-cost rounds bounded
    config.epsilon_bar = 0.6;
    core::Eta2Server server(6, config, nullptr);
    const std::vector<double> caps(6, 6.0);
    Rng rng(19);
    const auto warmup = server.step(labeled_batch(), caps,
                                    testing::golden_collect(0), rng);
    EXPECT_TRUE(warmup.warmup) << name;
    const auto steady = server.step(labeled_batch(), caps,
                                    testing::golden_collect(1), rng);
    EXPECT_FALSE(steady.warmup) << name;
    EXPECT_EQ(steady.truth.size(), 5u) << name;
    EXPECT_EQ(steady.sigma.size(), 5u) << name;
    EXPECT_GT(steady.allocation.pair_count(), 0u) << name;
    for (const double mu : steady.truth) {
      EXPECT_FALSE(std::isnan(mu)) << name;
    }
  }
}

// Both truth updaters must run as the steady-state Module 2 under every
// step sequence.
TEST(StrategyRegistryTest, EveryTruthUpdaterRoundTripsThroughServerStep) {
  for (const std::string& name : core::truth_updaters().names()) {
    core::Eta2Config config;
    config.truth_updater = name;
    core::Eta2Server server(6, config, nullptr);
    const std::vector<double> caps(6, 6.0);
    Rng rng(23);
    server.step(labeled_batch(), caps, testing::golden_collect(0), rng);
    const auto steady = server.step(labeled_batch(), caps,
                                    testing::golden_collect(1), rng);
    EXPECT_EQ(steady.truth.size(), 5u) << name;
    for (const double mu : steady.truth) {
      EXPECT_FALSE(std::isnan(mu)) << name;
    }
    EXPECT_GT(server.expertise_store().domain_count(), 0u) << name;
  }
}

TEST(MethodRegistryTest, SpecsReferenceRegisteredStages) {
  for (const sim::MethodSpec& spec : sim::method_specs()) {
    EXPECT_TRUE(core::allocation_strategies().contains(spec.allocator))
        << spec.name;
    if (!spec.server) {
      EXPECT_TRUE(truth::truth_methods().contains(spec.truth_method))
          << spec.name;
    }
  }
  EXPECT_TRUE(sim::has_method("eta2"));
  EXPECT_FALSE(sim::has_method("nope"));
  EXPECT_EQ(sim::method_names().size(), sim::method_specs().size());
}

}  // namespace
}  // namespace eta2
