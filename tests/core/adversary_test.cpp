// AdversaryPlan (common/fault.h): the attack side of DESIGN.md §14.
// Decisions are counter hashes of (seed, kind, step, task, user), so every
// property here is exact — two plans with equal options agree on every
// decision, a clique's members compute one shared offset, and the tallies
// reconcile with the decisions that produced them.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/fault.h"

namespace eta2::fault {
namespace {

constexpr std::size_t kUsers = 400;
constexpr std::size_t kTasks = 16;

ObserveFn honest_collect() {
  return [](std::size_t task, std::size_t user) -> std::optional<double> {
    return 10.0 + static_cast<double>(task) +
           0.01 * static_cast<double>(user);
  };
}

TEST(AdversaryPlanTest, ValidatesOptions) {
  AdversaryOptions bad;
  bad.sybil_fraction = 1.5;
  EXPECT_THROW(AdversaryPlan{bad}, std::invalid_argument);
  bad = {};
  bad.clique_count = 0;
  bad.sybil_fraction = 0.1;
  EXPECT_THROW(AdversaryPlan{bad}, std::invalid_argument);
  bad = {};
  bad.clique_offset_lo = 5.0;
  bad.clique_offset_hi = 2.0;
  EXPECT_THROW(AdversaryPlan{bad}, std::invalid_argument);
  bad = {};
  bad.burst_participation = -0.1;
  EXPECT_THROW(AdversaryPlan{bad}, std::invalid_argument);
}

TEST(AdversaryPlanTest, AnyIsFalseOnlyForNoAttacks) {
  AdversaryOptions options;
  EXPECT_FALSE(options.any());
  options.sybil_fraction = 0.1;
  EXPECT_TRUE(options.any());
  options = {};
  options.burst_step_rate = 0.2;
  EXPECT_TRUE(options.any());
}

TEST(AdversaryPlanTest, DecisionsAreDeterministicAcrossInstances) {
  AdversaryOptions options;
  options.seed = 99;
  options.sybil_fraction = 0.2;
  options.clique_count = 3;
  options.camouflage_fraction = 0.15;
  options.drift_fraction = 0.1;
  options.burst_step_rate = 0.3;
  AdversaryPlan a(options);
  AdversaryPlan b(options);
  for (std::uint64_t step = 0; step < 6; ++step) {
    a.begin_step(step);
    b.begin_step(step);
    EXPECT_EQ(a.burst_step(), b.burst_step());
    for (std::size_t user = 0; user < kUsers; ++user) {
      ASSERT_EQ(a.user_sybil(user), b.user_sybil(user));
      ASSERT_EQ(a.user_camouflage(user), b.user_camouflage(user));
      ASSERT_EQ(a.user_drifts(user), b.user_drifts(user));
      ASSERT_EQ(a.burst_participant(user), b.burst_participant(user));
      if (a.user_sybil(user)) {
        ASSERT_EQ(a.clique_of(user), b.clique_of(user));
      }
    }
  }
}

TEST(AdversaryPlanTest, WrappedValuesAreIndependentOfCallOrder) {
  AdversaryOptions options;
  options.seed = 7;
  options.sybil_fraction = 0.25;
  options.camouflage_fraction = 0.2;
  options.drift_fraction = 0.2;
  options.burst_step_rate = 0.5;
  AdversaryPlan forward(options);
  AdversaryPlan backward(options);
  ObserveFn f = forward.wrap_collect(honest_collect());
  ObserveFn b = backward.wrap_collect(honest_collect());

  forward.begin_step(3);
  backward.begin_step(3);
  std::map<std::pair<std::size_t, std::size_t>, double> forward_values;
  for (std::size_t task = 0; task < kTasks; ++task) {
    for (std::size_t user = 0; user < 50; ++user) {
      forward_values[{task, user}] = *f(task, user);
    }
  }
  for (std::size_t task = kTasks; task-- > 0;) {
    for (std::size_t user = 50; user-- > 0;) {
      const double expected = forward_values[{task, user}];
      EXPECT_EQ(*b(task, user), expected)
          << "task " << task << " user " << user;
    }
  }
}

TEST(AdversaryPlanTest, SybilFractionIsRespectedApproximately) {
  AdversaryOptions options;
  options.seed = 5;
  options.sybil_fraction = 0.3;
  AdversaryPlan plan(options);
  std::size_t sybils = 0;
  for (std::size_t user = 0; user < kUsers; ++user) {
    if (plan.user_sybil(user)) ++sybils;
  }
  const double fraction =
      static_cast<double>(sybils) / static_cast<double>(kUsers);
  EXPECT_NEAR(fraction, 0.3, 0.08);
}

TEST(AdversaryPlanTest, CliqueMembersShareOneOffsetPerTask) {
  AdversaryOptions options;
  options.seed = 21;
  options.sybil_fraction = 0.4;
  options.clique_count = 3;
  AdversaryPlan plan(options);
  // Honest signal without a per-user term, so the delivered values of one
  // (clique, task) cell must be bit-identical across members.
  ObserveFn base = [](std::size_t task, std::size_t) -> std::optional<double> {
    return 10.0 + static_cast<double>(task);
  };
  ObserveFn wrapped = plan.wrap_collect(
      [&base](std::size_t task, std::size_t user) { return base(task, user); });

  plan.begin_step(2);
  std::map<std::size_t, std::set<int>> clique_signs;
  std::size_t sybils_seen = 0;
  for (std::size_t task = 0; task < kTasks; ++task) {
    for (std::size_t user = 0; user < kUsers; ++user) {
      if (!plan.user_sybil(user)) {
        EXPECT_EQ(*wrapped(task, user), *base(task, user));
        continue;
      }
      ++sybils_seen;
      const std::size_t clique = plan.clique_of(user);
      ASSERT_LT(clique, options.clique_count);
      const double offset = plan.clique_offset(clique, task);
      EXPECT_EQ(*wrapped(task, user), *base(task, user) + offset)
          << "clique " << clique << " task " << task << " user " << user
          << " deviated from the coordinated value";
      clique_signs[clique].insert(offset > 0.0 ? 1 : -1);
      EXPECT_GE(std::abs(offset), options.clique_offset_lo);
      EXPECT_LE(std::abs(offset), options.clique_offset_hi);
    }
  }
  EXPECT_GT(sybils_seen, 0u);
  for (const auto& [clique, signs] : clique_signs) {
    EXPECT_EQ(signs.size(), 1u)
        << "clique " << clique << " flipped direction";
  }
  // The sign persists across steps too.
  const double before = plan.clique_offset(0, 1);
  plan.begin_step(5);
  const double after = plan.clique_offset(0, 1);
  EXPECT_EQ(before > 0.0, after > 0.0);
}

TEST(AdversaryPlanTest, CamouflageTurnsAtTheConfiguredStep) {
  AdversaryOptions options;
  options.seed = 33;
  options.camouflage_fraction = 0.5;
  options.camouflage_after = 2;
  AdversaryPlan plan(options);
  ObserveFn wrapped = plan.wrap_collect(honest_collect());
  ObserveFn honest = honest_collect();

  std::size_t camouflaged = 0;
  std::vector<double> poisoned_offsets(kUsers, 0.0);
  for (std::uint64_t step = 0; step < 4; ++step) {
    plan.begin_step(step);
    for (std::size_t user = 0; user < kUsers; ++user) {
      const double offset = *wrapped(3, user) - *honest(3, user);
      if (!plan.user_camouflage(user)) {
        EXPECT_EQ(offset, 0.0);
        continue;
      }
      if (step < options.camouflage_after) {
        EXPECT_EQ(offset, 0.0) << "poisoned during the warm-up act";
      } else {
        ++camouflaged;
        EXPECT_GE(std::abs(offset), options.camouflage_offset_lo);
        EXPECT_LE(std::abs(offset), options.camouflage_offset_hi);
        // The per-user offset is persistent: same value every later step.
        if (poisoned_offsets[user] == 0.0) {
          poisoned_offsets[user] = offset;
        } else {
          EXPECT_EQ(offset, poisoned_offsets[user]);
        }
      }
    }
  }
  EXPECT_GT(camouflaged, 0u);
}

TEST(AdversaryPlanTest, DriftAmplitudeGrowsWithTheStep) {
  AdversaryOptions options;
  options.seed = 40;
  options.drift_fraction = 1.0;
  options.drift_per_step = 0.5;
  AdversaryPlan plan(options);
  ObserveFn wrapped = plan.wrap_collect(honest_collect());
  ObserveFn honest = honest_collect();

  plan.begin_step(0);
  EXPECT_EQ(*wrapped(0, 1), *honest(0, 1)) << "drift must start at zero";
  for (const std::uint64_t step : {2, 8}) {
    plan.begin_step(step);
    const double bound =
        options.drift_per_step * static_cast<double>(step);
    double max_offset = 0.0;
    for (std::size_t task = 0; task < kTasks; ++task) {
      for (std::size_t user = 0; user < 50; ++user) {
        const double offset =
            std::abs(*wrapped(task, user) - *honest(task, user));
        EXPECT_LE(offset, bound);
        max_offset = std::max(max_offset, offset);
      }
    }
    EXPECT_GT(max_offset, 0.5 * bound)
        << "drift noise never came near its amplitude at step " << step;
  }
}

TEST(AdversaryPlanTest, BurstBotSetIsFixedAcrossSteps) {
  AdversaryOptions options;
  options.seed = 51;
  options.burst_step_rate = 0.5;
  AdversaryPlan plan(options);
  std::vector<bool> bots(kUsers);
  plan.begin_step(0);
  for (std::size_t user = 0; user < kUsers; ++user) {
    bots[user] = plan.burst_participant(user);
  }
  for (const std::uint64_t step : {1, 4, 9}) {
    plan.begin_step(step);
    for (std::size_t user = 0; user < kUsers; ++user) {
      ASSERT_EQ(plan.burst_participant(user), bots[user])
          << "bot set changed at step " << step;
    }
  }
}

TEST(AdversaryPlanTest, BurstShiftsShareStepSignAndBounds) {
  AdversaryOptions options;
  options.seed = 52;
  options.burst_step_rate = 1.0;  // every step is a bomb step
  options.burst_participation = 0.5;
  AdversaryPlan plan(options);
  ObserveFn wrapped = plan.wrap_collect(honest_collect());
  ObserveFn honest = honest_collect();

  plan.begin_step(1);
  ASSERT_TRUE(plan.burst_step());
  std::set<int> signs;
  for (std::size_t task = 0; task < kTasks; ++task) {
    for (std::size_t user = 0; user < kUsers; ++user) {
      const double offset = *wrapped(task, user) - *honest(task, user);
      if (!plan.burst_participant(user)) {
        EXPECT_EQ(offset, 0.0);
        continue;
      }
      EXPECT_GE(std::abs(offset), options.burst_offset_lo);
      EXPECT_LE(std::abs(offset), options.burst_offset_hi);
      signs.insert(offset > 0.0 ? 1 : -1);
    }
  }
  EXPECT_EQ(signs.size(), 1u) << "a bomb step must push one direction";
}

TEST(AdversaryPlanTest, NonResponsesPassThroughUntouched) {
  AdversaryOptions options;
  options.seed = 60;
  options.sybil_fraction = 1.0;
  AdversaryPlan plan(options);
  ObserveFn wrapped = plan.wrap_collect(
      [](std::size_t, std::size_t) -> std::optional<double> {
        return std::nullopt;
      });
  plan.begin_step(0);
  EXPECT_FALSE(wrapped(0, 0).has_value());
  EXPECT_EQ(plan.stats().clique_reports, 0u)
      << "a sybil who never responds delivers nothing";
}

TEST(AdversaryPlanTest, StatsTallyDeliveredAttacksAndRestore) {
  AdversaryOptions options;
  options.seed = 71;
  options.sybil_fraction = 0.2;
  options.camouflage_fraction = 0.2;
  options.camouflage_after = 1;
  options.burst_step_rate = 1.0;
  AdversaryPlan plan(options);
  ObserveFn wrapped = plan.wrap_collect(honest_collect());

  std::uint64_t expected_clique = 0;
  std::uint64_t expected_honest = 0;
  std::uint64_t expected_poisoned = 0;
  std::uint64_t expected_burst = 0;
  for (std::uint64_t step = 0; step < 2; ++step) {
    plan.begin_step(step);
    for (std::size_t user = 0; user < 100; ++user) {
      (void)*wrapped(0, user);
      if (plan.user_sybil(user)) {
        ++expected_clique;
        continue;  // clique membership preempts the other traits
      }
      if (plan.user_camouflage(user)) {
        ++(step < options.camouflage_after ? expected_honest
                                           : expected_poisoned);
      }
      if (plan.burst_participant(user)) ++expected_burst;
    }
  }
  const AdversaryStats stats = plan.stats();
  EXPECT_EQ(stats.observations_seen, 200u);
  EXPECT_EQ(stats.clique_reports, expected_clique);
  EXPECT_EQ(stats.camouflage_honest, expected_honest);
  EXPECT_EQ(stats.camouflage_poisoned, expected_poisoned);
  EXPECT_EQ(stats.burst_reports, expected_burst);
  EXPECT_EQ(stats.burst_steps, 2u);

  // Transactional restore, same contract as FaultPlan: the durability
  // layer rolls tallies back before a step retry.
  plan.restore_stats(AdversaryStats{});
  EXPECT_EQ(plan.stats().observations_seen, 0u);
  EXPECT_EQ(plan.stats().burst_steps, 0u);
}

}  // namespace
}  // namespace eta2::fault
