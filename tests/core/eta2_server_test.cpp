#include "core/eta2_server.h"

#include <gtest/gtest.h>

#include <cmath>

#include "text/embedder.h"

namespace eta2::core {
namespace {

std::vector<Eta2Server::NewTask> labeled_tasks(
    const std::vector<std::size_t>& domains, double time = 1.0) {
  std::vector<Eta2Server::NewTask> tasks;
  for (const std::size_t d : domains) {
    Eta2Server::NewTask t;
    t.known_domain = d;
    t.processing_time = time;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

TEST(Eta2ServerTest, RejectsBadConfig) {
  Eta2Config bad;
  bad.gamma = 2.0;
  EXPECT_THROW(Eta2Server(3, bad, nullptr), std::invalid_argument);
  bad = Eta2Config{};
  bad.alpha = -0.1;
  EXPECT_THROW(Eta2Server(3, bad, nullptr), std::invalid_argument);
  EXPECT_THROW(Eta2Server(0, Eta2Config{}, nullptr), std::invalid_argument);
}

TEST(Eta2ServerTest, EmptyBatchIsNoop) {
  Eta2Server server(2, Eta2Config{}, nullptr);
  Rng rng(1);
  const std::vector<double> caps(2, 5.0);
  const auto r = server.step({}, caps,
                             [](std::size_t, std::size_t) { return 0.0; }, rng);
  EXPECT_TRUE(r.truth.empty());
  EXPECT_FALSE(server.warmed_up());
}

TEST(Eta2ServerTest, FirstStepIsWarmupWithRandomAllocation) {
  Eta2Server server(4, Eta2Config{}, nullptr);
  Rng rng(2);
  const std::vector<double> caps(4, 10.0);
  const auto tasks = labeled_tasks({0, 0, 1, 1});
  const auto r = server.step(tasks, caps,
                             [](std::size_t, std::size_t) { return 5.0; }, rng);
  EXPECT_TRUE(r.warmup);
  EXPECT_TRUE(server.warmed_up());
  EXPECT_EQ(r.truth.size(), 4u);
  EXPECT_EQ(r.task_domains.size(), 4u);
  // With all users reporting 5.0 exactly, the truth is 5.0.
  for (const double mu : r.truth) {
    EXPECT_NEAR(mu, 5.0, 1e-9);
  }
}

TEST(Eta2ServerTest, KnownDomainsMapStably) {
  Eta2Server server(3, Eta2Config{}, nullptr);
  Rng rng(3);
  const std::vector<double> caps(3, 10.0);
  server.step(labeled_tasks({7, 3}), caps,
              [](std::size_t, std::size_t) { return 1.0; }, rng);
  const auto d7 = server.dense_of_external(7);
  const auto d3 = server.dense_of_external(3);
  ASSERT_TRUE(d7.has_value());
  ASSERT_TRUE(d3.has_value());
  EXPECT_NE(*d7, *d3);
  EXPECT_FALSE(server.dense_of_external(99).has_value());
  // A later batch reuses the mapping.
  const auto r = server.step(labeled_tasks({3}), caps,
                             [](std::size_t, std::size_t) { return 1.0; }, rng);
  EXPECT_EQ(r.task_domains[0], *d3);
}

TEST(Eta2ServerTest, LearnsExpertiseAcrossSteps) {
  Eta2Config config;
  config.alpha = 0.8;
  Eta2Server server(4, config, nullptr);
  Rng rng(5);
  const std::vector<double> caps(4, 20.0);
  // Several steps where user 0 is dead-on and others are off.
  for (int step = 0; step < 3; ++step) {
    Rng obs_rng(100 + step);
    server.step(labeled_tasks({0, 0, 0, 0, 0}), caps,
                [&obs_rng](std::size_t, std::size_t user) {
                  return user == 0 ? obs_rng.normal(10.0, 0.1)
                                   : obs_rng.normal(10.0, 4.0);
                },
                rng);
  }
  const auto dense = server.dense_of_external(0);
  ASSERT_TRUE(dense.has_value());
  const auto& store = server.expertise_store();
  for (std::size_t other = 1; other < 4; ++other) {
    EXPECT_GT(store.expertise(0, *dense), store.expertise(other, *dense));
  }
}

TEST(Eta2ServerTest, ExpertiseAwareAllocationPrefersExperts) {
  // After learning, the expert must receive at least as many tasks as any
  // noisy user when capacity binds.
  Eta2Config config;
  Eta2Server server(3, config, nullptr);
  Rng rng(7);
  const std::vector<double> caps(3, 4.0);  // room for 4 unit tasks each
  auto collect = [](std::size_t, std::size_t user) {
    static Rng obs(55);
    return user == 0 ? obs.normal(0.0, 0.05) : obs.normal(0.0, 5.0);
  };
  server.step(labeled_tasks(std::vector<std::size_t>(6, 0)), caps, collect, rng);
  const auto r =
      server.step(labeled_tasks(std::vector<std::size_t>(6, 0)), caps, collect, rng);
  EXPECT_FALSE(r.warmup);
  std::size_t expert_load = 0;
  std::size_t max_other = 0;
  for (std::size_t j = 0; j < 6; ++j) {
    for (const std::size_t u : r.allocation.users_of(j)) {
      if (u == 0) {
        ++expert_load;
      }
    }
  }
  for (std::size_t u = 1; u < 3; ++u) {
    std::size_t load = 0;
    for (std::size_t j = 0; j < 6; ++j) {
      if (r.allocation.is_assigned(u, j)) ++load;
    }
    max_other = std::max(max_other, load);
  }
  EXPECT_GE(expert_load, max_other);
  EXPECT_EQ(expert_load, 4u);  // capacity-bound: the expert is saturated
}

TEST(Eta2ServerTest, DescribedTasksNeedEmbedder) {
  Eta2Server server(2, Eta2Config{}, nullptr);
  Rng rng(9);
  const std::vector<double> caps(2, 5.0);
  std::vector<Eta2Server::NewTask> tasks(1);
  tasks[0].description = "noise near the park";
  EXPECT_THROW(server.step(tasks, caps,
                           [](std::size_t, std::size_t) { return 0.0; }, rng),
               std::invalid_argument);
}

TEST(Eta2ServerTest, DescribedTasksClusterIntoDomains) {
  auto embedder = std::make_shared<text::HashEmbedder>(32);
  Eta2Config config;
  config.gamma = 0.6;
  Eta2Server server(3, config, embedder);
  Rng rng(11);
  const std::vector<double> caps(3, 20.0);
  std::vector<Eta2Server::NewTask> tasks(4);
  tasks[0].description = "noise near the park";
  tasks[1].description = "noise around the park";
  tasks[2].description = "salary at the bank";
  tasks[3].description = "salary of the bank";
  for (auto& t : tasks) t.processing_time = 1.0;
  const auto r = server.step(tasks, caps,
                             [](std::size_t, std::size_t) { return 1.0; }, rng);
  ASSERT_EQ(r.task_domains.size(), 4u);
  EXPECT_EQ(r.task_domains[0], r.task_domains[1]);
  EXPECT_EQ(r.task_domains[2], r.task_domains[3]);
  EXPECT_NE(r.task_domains[0], r.task_domains[2]);
}

TEST(Eta2ServerTest, MinCostModeReportsDataIterations) {
  Eta2Config config;
  config.use_min_cost = true;
  config.cost_per_iteration = 4.0;
  config.epsilon_bar = 0.9;
  Eta2Server server(6, config, nullptr);
  Rng rng(13);
  const std::vector<double> caps(6, 10.0);
  auto collect = [](std::size_t, std::size_t) {
    static Rng obs(77);
    return obs.normal(3.0, 0.5);
  };
  // Warm-up first (random), then a min-cost step.
  server.step(labeled_tasks({0, 0, 0}), caps, collect, rng);
  const auto r = server.step(labeled_tasks({0, 0, 0}), caps, collect, rng);
  EXPECT_FALSE(r.warmup);
  EXPECT_GE(r.data_iterations, 1);
  EXPECT_GT(r.cost, 0.0);
}

TEST(Eta2ServerTest, CapacitySizeMismatchThrows) {
  Eta2Server server(3, Eta2Config{}, nullptr);
  Rng rng(15);
  const std::vector<double> wrong(2, 5.0);
  EXPECT_THROW(server.step(labeled_tasks({0}), wrong,
                           [](std::size_t, std::size_t) { return 0.0; }, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace eta2::core
