// Persistence round-trips: the expertise store, the dynamic clusterer and
// the whole server must survive save+load with identical behavior — the
// production story for restarting the crowdsourcing server between days.
#include <gtest/gtest.h>

#include <sstream>

#include "clustering/dynamic_clusterer.h"
#include "core/eta2_server.h"
#include "core/strategy_registry.h"
#include "golden_scenarios.h"
#include "text/embedder.h"
#include "truth/expertise_store.h"

namespace eta2 {
namespace {

TEST(ExpertiseStorePersistence, RoundTripPreservesExpertise) {
  truth::ExpertiseStore store(3, truth::MleOptions{});
  store.add_domain();
  store.add_domain();
  store.decay_and_accumulate(1.0, {{4.0, 1.0}, {9.0, 0.0}, {1.0, 2.0}},
                             {{1.0, 3.0}, {1.0, 0.0}, {2.0, 0.5}});
  std::ostringstream out;
  store.save(out);
  std::istringstream in(out.str());
  const truth::ExpertiseStore loaded =
      truth::ExpertiseStore::load(in, truth::MleOptions{});
  ASSERT_EQ(loaded.user_count(), 3u);
  ASSERT_EQ(loaded.domain_count(), 2u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_DOUBLE_EQ(loaded.expertise(i, k), store.expertise(i, k));
    }
  }
}

TEST(ExpertiseStorePersistence, RejectsCorruptedInput) {
  std::istringstream bad_header("wrong v1\n1 1\n0\n0\n");
  EXPECT_THROW(truth::ExpertiseStore::load(bad_header, truth::MleOptions{}),
               std::invalid_argument);
  std::istringstream truncated("expertise-store v1\n2 2\n1 2\n");
  EXPECT_THROW(truth::ExpertiseStore::load(truncated, truth::MleOptions{}),
               std::invalid_argument);
}

TEST(ClustererPersistence, RoundTripContinuesIdentically) {
  clustering::DynamicClusterer original(0.5);
  const std::vector<text::Embedding> batch1 = {
      {0.0, 0.0, 0.0, 0.0}, {0.1, 0.0, 0.0, 0.0},
      {9.0, 0.0, 9.0, 0.0}, {9.1, 0.0, 9.0, 0.0}};
  original.add_tasks(batch1);

  std::ostringstream out;
  original.save(out);
  std::istringstream in(out.str());
  clustering::DynamicClusterer loaded = clustering::DynamicClusterer::load(in);

  EXPECT_EQ(loaded.task_count(), original.task_count());
  EXPECT_DOUBLE_EQ(loaded.dstar(), original.dstar());
  EXPECT_DOUBLE_EQ(loaded.gamma(), original.gamma());
  for (std::size_t p = 0; p < original.task_count(); ++p) {
    EXPECT_EQ(loaded.domain_of(p), original.domain_of(p));
  }
  // A further identical batch must produce identical assignments.
  const std::vector<text::Embedding> batch2 = {{0.05, 0.0, 0.0, 0.0},
                                               {50.0, 0.0, 50.0, 0.0}};
  const auto u1 = original.add_tasks(batch2);
  const auto u2 = loaded.add_tasks(batch2);
  EXPECT_EQ(u1.assignments, u2.assignments);
  EXPECT_EQ(u1.new_domains, u2.new_domains);
}

TEST(ServerPersistence, RestartedServerBehavesIdentically) {
  auto embedder = std::make_shared<text::HashEmbedder>(16);
  core::Eta2Config config;
  auto make_batch = [] {
    std::vector<core::Eta2Server::NewTask> batch(4);
    batch[0].description = "noise near the park";
    batch[1].description = "noise around the park";
    batch[2].description = "salary at the bank";
    batch[3].description = "salary of the bank";
    for (auto& t : batch) t.processing_time = 1.0;
    return batch;
  };
  auto collect = [](std::size_t j, std::size_t i) {
    return 10.0 + static_cast<double>(j) + 0.1 * static_cast<double>(i);
  };
  const std::vector<double> caps(4, 10.0);

  core::Eta2Server original(4, config, embedder);
  Rng rng_a(5);
  original.step(make_batch(), caps, collect, rng_a);

  std::ostringstream out;
  original.save(out);
  std::istringstream in(out.str());
  core::Eta2Server restored = core::Eta2Server::load(in, config, embedder);

  EXPECT_EQ(restored.warmed_up(), original.warmed_up());
  EXPECT_EQ(restored.user_count(), original.user_count());
  ASSERT_EQ(restored.expertise_store().domain_count(),
            original.expertise_store().domain_count());
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t k = 0; k < original.expertise_store().domain_count(); ++k) {
      EXPECT_DOUBLE_EQ(restored.expertise_store().expertise(i, k),
                       original.expertise_store().expertise(i, k));
    }
  }

  // Continue both servers with identical RNG state: results must agree.
  Rng rng_b(77);
  Rng rng_c(77);
  const auto r1 = original.step(make_batch(), caps, collect, rng_b);
  const auto r2 = restored.step(make_batch(), caps, collect, rng_c);
  EXPECT_EQ(r1.task_domains, r2.task_domains);
  ASSERT_EQ(r1.truth.size(), r2.truth.size());
  for (std::size_t j = 0; j < r1.truth.size(); ++j) {
    EXPECT_DOUBLE_EQ(r1.truth[j], r2.truth[j]);
  }
  EXPECT_DOUBLE_EQ(r1.cost, r2.cost);
}

TEST(ServerPersistence, TopExpertsRanksLearnedUsers) {
  core::Eta2Config config;
  core::Eta2Server server(4, config, nullptr);
  Rng rng(9);
  const std::vector<double> caps(4, 20.0);
  std::vector<core::Eta2Server::NewTask> batch(15);
  for (auto& t : batch) {
    t.known_domain = 0;
    t.processing_time = 1.0;
  }
  auto collect = [](std::size_t j, std::size_t user) {
    static Rng obs(3);
    const double mu = 1.0 + 3.0 * static_cast<double>(j);
    return user == 2 ? obs.normal(mu, 0.01) : obs.normal(mu, 2.0);
  };
  server.step(batch, caps, collect, rng);
  server.step(batch, caps, collect, rng);
  server.step(batch, caps, collect, rng);
  const auto dense = server.dense_of_external(0);
  ASSERT_TRUE(dense.has_value());
  const auto experts = server.top_experts(*dense, 2);
  ASSERT_EQ(experts.size(), 2u);
  EXPECT_EQ(experts[0], 2u);
}

// Save → load → step must be bit-equivalent to never restarting, for every
// registered allocation strategy (not just the paper defaults).
TEST(ServerPersistence, SaveLoadStepEquivalentForEveryStrategy) {
  for (const std::string& name : core::allocation_strategies().names()) {
    core::Eta2Config config;
    config.allocator = name;
    config.cost_per_iteration = 8.0;  // keep min-cost rounds bounded
    config.epsilon_bar = 0.6;
    core::Eta2Server server(6, config, nullptr);
    const std::vector<double> caps(6, 6.0);
    std::vector<core::Eta2Server::NewTask> batch(5);
    for (std::size_t t = 0; t < batch.size(); ++t) {
      batch[t].known_domain = t % 3;
      batch[t].processing_time = 1.0 + 0.25 * static_cast<double>(t);
      batch[t].cost = 1.0 + static_cast<double>(t % 2);
    }
    Rng rng(31);
    server.step(batch, caps, testing::golden_collect(0), rng);  // warm-up
    server.step(batch, caps, testing::golden_collect(1), rng);

    std::ostringstream out;
    server.save(out);
    std::istringstream in(out.str());
    core::Eta2Server restored =
        core::Eta2Server::load(in, config, nullptr);

    Rng rng_a(127);
    Rng rng_b(127);
    const auto r1 = server.step(batch, caps, testing::golden_collect(2), rng_a);
    const auto r2 =
        restored.step(batch, caps, testing::golden_collect(2), rng_b);
    EXPECT_EQ(testing::format_step(2, r1), testing::format_step(2, r2)) << name;
  }
}

TEST(ServerPersistence, LoadRejectsGarbage) {
  std::istringstream garbage("not-a-server v1\n");
  EXPECT_THROW(core::Eta2Server::load(garbage, core::Eta2Config{}, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace eta2
