// Transactional-step suite for core/durable_runner.h: a durable campaign
// must be bit-identical to the in-memory simulate() loop, retries must roll
// the campaign back so transient failures leave no trace, poisoned steps
// quarantine after bounded retries, and recovery — from clean stops, torn
// journals, and corrupt snapshot generations — must reproduce the
// uninterrupted run exactly at any thread count.
#include "core/durable_runner.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "io/snapshot.h"
#include "sim/dataset.h"
#include "sim/durable_sim.h"
#include "sim/simulation.h"

namespace eta2 {
namespace {

namespace fs = std::filesystem;

// Aborts the campaign from a crash hook: simulates a process death at a
// protocol instant without fork/SIGKILL (crash_torture_test covers the real
// thing). Not one of the runner's retryable types, so it propagates.
struct SimulatedCrash {};

class DurableRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("eta2_durable_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    io::set_durable_fsync(false);  // framing suite covers durability knobs
  }
  void TearDown() override {
    io::set_durable_fsync(true);
    fs::remove_all(dir_);
  }

  [[nodiscard]] core::DurableOptions durable_options(
      std::uint64_t cadence = 2) const {
    core::DurableOptions durable;
    durable.dir = dir_;
    durable.snapshot_cadence = cadence;
    return durable;
  }

  std::string dir_;
};

sim::Dataset small_dataset(std::uint64_t seed = 17) {
  sim::SyntheticOptions synthetic;
  synthetic.users = 20;
  synthetic.tasks = 120;
  synthetic.domains = 4;
  synthetic.days = 6;
  return sim::make_synthetic(synthetic, seed);
}

// Flattens every observable of a run for bitwise comparison.
std::vector<double> flatten(const sim::SimulationResult& run) {
  std::vector<double> flat{run.overall_error, run.total_cost,
                           run.expertise_mae};
  for (const auto& day : run.days) {
    flat.push_back(day.estimation_error);
    flat.push_back(day.cost);
    flat.push_back(static_cast<double>(day.pair_count));
    flat.push_back(static_cast<double>(day.task_count));
    for (const std::size_t v : day.users_per_task) {
      flat.push_back(static_cast<double>(v));
    }
    for (const double v : day.mean_assigned_expertise) flat.push_back(v);
  }
  for (const int v : run.truth_iteration_log) {
    flat.push_back(static_cast<double>(v));
  }
  const auto push_health = [&flat](const core::StepHealth& h) {
    flat.push_back(static_cast<double>(h.pairs_asked));
    flat.push_back(static_cast<double>(h.observations_accepted));
    flat.push_back(static_cast<double>(h.silent_pairs));
    flat.push_back(static_cast<double>(h.quality_unmet_tasks));
    flat.push_back(static_cast<double>(h.quarantined_batches));
  };
  push_health(run.health);
  for (const auto& day : run.day_health) push_health(day);
  return flat;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << what << ": runs differ bitwise";
  }
}

TEST_F(DurableRunnerTest, FreshDurableCampaignMatchesInMemorySimulate) {
  const sim::Dataset dataset = small_dataset();
  const sim::SimOptions options;
  const sim::SimulationResult plain = sim::simulate(dataset, "eta2", options, 4);
  const sim::SimulationResult durable =
      sim::simulate_durable(dataset, "eta2", options, 4, durable_options());
  EXPECT_FALSE(durable.resumed);
  EXPECT_EQ(durable.replayed_steps, 0u);
  EXPECT_EQ(durable.quarantined_steps, 0u);
  expect_bitwise_equal(flatten(plain), flatten(durable),
                       "durable vs in-memory");
}

TEST_F(DurableRunnerTest, FaultedDurableCampaignMatchesInMemorySimulate) {
  const sim::Dataset dataset = small_dataset();
  sim::SimOptions options;
  options.config.observation_abs_limit = 1e5;
  options.fault.seed = 11;
  options.fault.nan_rate = 0.05;
  options.fault.outlier_rate = 0.05;
  options.fault.dropout_rate = 0.2;
  options.fault.empty_batch_rate = 0.15;
  const sim::SimulationResult plain = sim::simulate(dataset, "eta2", options, 4);
  const sim::SimulationResult durable =
      sim::simulate_durable(dataset, "eta2", options, 4, durable_options());
  expect_bitwise_equal(flatten(plain), flatten(durable),
                       "faulted durable vs in-memory");
  EXPECT_EQ(durable.fault_stats.observations_seen,
            plain.fault_stats.observations_seen);
  EXPECT_EQ(durable.fault_stats.batches_dropped,
            plain.fault_stats.batches_dropped);
}

TEST_F(DurableRunnerTest, ResumingFinishedCampaignReproducesResult) {
  const sim::Dataset dataset = small_dataset();
  const sim::SimOptions options;
  const sim::SimulationResult first =
      sim::simulate_durable(dataset, "eta2", options, 4, durable_options());
  const sim::SimulationResult second =
      sim::simulate_durable(dataset, "eta2", options, 4, durable_options());
  EXPECT_TRUE(second.resumed);
  EXPECT_EQ(second.replayed_steps, 0u);  // final checkpoint covers everything
  expect_bitwise_equal(flatten(first), flatten(second), "finished resume");
}

// Interrupts a durable campaign by throwing from the crash hook the n-th
// time `point` fires, then verifies that resuming completes the campaign
// with a result bitwise-equal to an uninterrupted one.
void check_crash_resume(const std::string& dir, const char* point,
                        int fire_at, std::size_t resume_threads) {
  const sim::Dataset dataset = small_dataset();
  const sim::SimOptions options;
  const sim::SimulationResult golden =
      sim::simulate(dataset, "eta2", options, 4);

  core::DurableOptions durable;
  durable.dir = dir;
  durable.snapshot_cadence = 2;
  int fired = 0;
  durable.crash_hook = [&](std::string_view p) {
    if (p == point && ++fired == fire_at) throw SimulatedCrash{};
  };
  EXPECT_THROW(sim::simulate_durable(dataset, "eta2", options, 4, durable),
               SimulatedCrash)
      << point << " never fired " << fire_at << " times";

  durable.crash_hook = nullptr;
  parallel::set_thread_count(resume_threads);
  const sim::SimulationResult resumed =
      sim::simulate_durable(dataset, "eta2", options, 4, durable);
  parallel::set_thread_count(0);
  EXPECT_TRUE(resumed.resumed) << point;
  expect_bitwise_equal(flatten(golden), flatten(resumed), point);
}

TEST_F(DurableRunnerTest, ResumesAfterCrashMidJournalAppend) {
  // The torn half-frame on disk is the canonical post-crash state.
  check_crash_resume(dir_, "journal-append-mid", 5, 1);
}

TEST_F(DurableRunnerTest, ResumesAfterCrashBeforeSnapshotRename) {
  // Crash with the tmp file written but not renamed: the previous
  // generation plus the journal must carry the campaign.
  check_crash_resume(dir_, "snapshot-pre-rename", 2, 1);
}

TEST_F(DurableRunnerTest, ResumesAfterCrashAfterSnapshotRename) {
  // Crash after the new generation landed but before rotate/prune.
  check_crash_resume(dir_, "snapshot-post-rename", 2, 1);
}

TEST_F(DurableRunnerTest, ResumeIsBitIdenticalAcrossThreadCounts) {
  // Interrupt at 1 thread, resume at 8: recovery restores every stochastic
  // input, so the thread count cannot show through.
  check_crash_resume(dir_, "journal-append-post", 7, 8);
}

TEST_F(DurableRunnerTest, TransientFailureRetriesAndLeavesNoTrace) {
  const sim::Dataset dataset = small_dataset();
  const std::vector<double> capacities(dataset.user_count(), 12.0);
  const auto day_batch = [&](std::uint64_t step) {
    std::vector<core::NewTask> batch;
    for (const std::size_t j : dataset.tasks_of_day(static_cast<int>(step))) {
      core::NewTask t;
      t.known_domain = dataset.tasks[j].true_domain;
      t.processing_time = dataset.tasks[j].processing_time;
      batch.push_back(t);
    }
    return batch;
  };

  const auto run_campaign = [&](const std::string& dir, bool inject) {
    core::DurableOptions durable;
    durable.dir = dir;
    durable.snapshot_cadence = 2;
    durable.max_step_retries = 2;
    int attempt = 0;
    durable.attempt_hook = [&](std::uint64_t, int a) { attempt = a; };
    core::DurableRunner::Callbacks callbacks;
    core::DurableRunner* self = nullptr;
    callbacks.make_collect = [&](std::uint64_t step) -> core::CollectFn {
      const auto ids = dataset.tasks_of_day(static_cast<int>(step));
      auto observe_rng =
          std::make_shared<Rng>(self->rng().fork(step + 1));
      return [&, ids, observe_rng, step](std::size_t local, std::size_t user) {
        if (inject && step == 2 && attempt == 0) {
          throw NumericalError("transient sensor glitch");
        }
        return sim::observe(dataset, user, ids[local], *observe_rng);
      };
    };
    core::DurableRunner runner(dataset.user_count(), core::Eta2Config{},
                               nullptr, 4, durable, callbacks);
    self = &runner;
    std::vector<double> flat;
    for (std::uint64_t step = 0; step < 4; ++step) {
      const auto outcome = runner.run_step(day_batch(step), capacities);
      EXPECT_FALSE(outcome.quarantined);
      if (inject && step == 2) {
        EXPECT_EQ(outcome.attempts, 2);
        EXPECT_NE(outcome.error.find("transient"), std::string::npos);
      }
      for (const double v : outcome.result.truth) flat.push_back(v);
      for (const double v : outcome.result.sigma) flat.push_back(v);
    }
    return flat;
  };

  const std::vector<double> clean = run_campaign(dir_ + "_clean", false);
  const std::vector<double> retried = run_campaign(dir_, true);
  fs::remove_all(dir_ + "_clean");
  // The failed attempt was rolled back wholesale (server, RNG, fault
  // cursor): the retried campaign is bitwise the clean one.
  expect_bitwise_equal(clean, retried, "retried vs clean campaign");
}

TEST_F(DurableRunnerTest, PoisonedStepQuarantinesAndCampaignContinues) {
  const sim::Dataset dataset = small_dataset();
  const std::vector<double> capacities(dataset.user_count(), 12.0);
  // Cadence past the horizon: only the base snapshot exists, so reopening
  // replays the whole history — including the quarantine — from the journal.
  core::DurableOptions durable = durable_options(/*cadence=*/100);
  durable.max_step_retries = 1;

  const auto make_callbacks = [&](core::DurableRunner*& self) {
    core::DurableRunner::Callbacks callbacks;
    callbacks.make_collect = [&](std::uint64_t step) -> core::CollectFn {
      const auto ids = dataset.tasks_of_day(static_cast<int>(step));
      auto observe_rng = std::make_shared<Rng>(self->rng().fork(step + 1));
      return [&, ids, observe_rng, step](std::size_t local, std::size_t user) {
        if (step == 1) throw NumericalError("poisoned batch");
        return sim::observe(dataset, user, ids[local], *observe_rng);
      };
    };
    return callbacks;
  };

  std::vector<double> first_truth;
  {
    core::DurableRunner* self = nullptr;
    core::DurableRunner runner(dataset.user_count(), core::Eta2Config{},
                               nullptr, 4, durable, make_callbacks(self));
    self = &runner;
    for (std::uint64_t step = 0; step < 3; ++step) {
      const auto batch = [&] {
        std::vector<core::NewTask> b;
        for (const std::size_t j :
             dataset.tasks_of_day(static_cast<int>(step))) {
          core::NewTask t;
          t.known_domain = dataset.tasks[j].true_domain;
          t.processing_time = dataset.tasks[j].processing_time;
          b.push_back(t);
        }
        return b;
      }();
      const auto outcome = runner.run_step(batch, capacities);
      if (step == 1) {
        EXPECT_TRUE(outcome.quarantined);
        EXPECT_EQ(outcome.attempts, 2);  // initial try + 1 retry
        EXPECT_TRUE(outcome.result.truth.empty());
      } else {
        EXPECT_FALSE(outcome.quarantined);
        for (const double v : outcome.result.truth) first_truth.push_back(v);
      }
    }
    EXPECT_EQ(runner.quarantined_steps(), 1u);
  }

  // Reopen mid-history: quarantined steps replay as quarantined (without
  // executing), committed steps verify against their digests.
  core::DurableRunner* self = nullptr;
  core::DurableRunner reopened(dataset.user_count(), core::Eta2Config{},
                               nullptr, 4, durable, make_callbacks(self));
  self = &reopened;
  EXPECT_TRUE(reopened.resumed());
  std::vector<double> second_truth;
  for (std::uint64_t step = reopened.next_step(); step < 3; ++step) {
    std::vector<core::NewTask> batch;
    for (const std::size_t j : dataset.tasks_of_day(static_cast<int>(step))) {
      core::NewTask t;
      t.known_domain = dataset.tasks[j].true_domain;
      t.processing_time = dataset.tasks[j].processing_time;
      batch.push_back(t);
    }
    const auto outcome = reopened.run_step(batch, capacities);
    if (step == 1) {
      EXPECT_TRUE(outcome.quarantined);
      EXPECT_TRUE(outcome.replayed);
    }
  }
  EXPECT_EQ(reopened.quarantined_steps(), 1u);
}

TEST_F(DurableRunnerTest, CorruptCurrentSnapshotFallsBackOneGeneration) {
  const sim::Dataset dataset = small_dataset();
  const sim::SimOptions options;
  const sim::SimulationResult golden =
      sim::simulate(dataset, "eta2", options, 4);

  // Interrupt mid-campaign so the two generations sit at different
  // frontiers, then flip a byte in the newest one: recovery must fall back
  // to snapshot.1.eta2 and close the gap from the journal.
  core::DurableOptions durable = durable_options();
  int fired = 0;
  durable.crash_hook = [&](std::string_view p) {
    if (p == "journal-append-post" && ++fired == 9) throw SimulatedCrash{};
  };
  EXPECT_THROW(sim::simulate_durable(dataset, "eta2", options, 4, durable),
               SimulatedCrash);
  durable.crash_hook = nullptr;

  const std::string snap =
      dir_ + "/" + core::DurableRunner::snapshot_file_name();
  std::string blob = io::read_file(snap);
  blob[blob.size() / 2] ^= 0x01;
  {
    std::ofstream out(snap, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }

  const sim::SimulationResult resumed =
      sim::simulate_durable(dataset, "eta2", options, 4, durable);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_GT(resumed.replayed_steps, 0u);  // the fallback is behind the head
  expect_bitwise_equal(flatten(golden), flatten(resumed),
                       "fallback-generation resume");
}

TEST_F(DurableRunnerTest, AllGenerationsCorruptIsUnrecoverableNotSilent) {
  const sim::Dataset dataset = small_dataset();
  const sim::SimOptions options;
  (void)sim::simulate_durable(dataset, "eta2", options, 4, durable_options());
  for (const std::string& name :
       {core::DurableRunner::snapshot_file_name(),
        core::DurableRunner::fallback_snapshot_file_name()}) {
    std::ofstream out(dir_ + "/" + name, std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  // Campaign data exists but nothing loads: starting silently from scratch
  // would double-count every journaled step, so this must throw.
  EXPECT_THROW(
      sim::simulate_durable(dataset, "eta2", options, 4, durable_options()),
      io::CorruptSnapshotError);
}

TEST_F(DurableRunnerTest, ReplayVerificationCatchesChangedInputs) {
  const sim::Dataset dataset = small_dataset(17);
  const sim::SimOptions options;
  core::DurableOptions durable = durable_options();
  int fired = 0;
  durable.crash_hook = [&](std::string_view p) {
    if (p == "journal-append-post" && ++fired == 5) throw SimulatedCrash{};
  };
  EXPECT_THROW(sim::simulate_durable(dataset, "eta2", options, 4, durable),
               SimulatedCrash);
  durable.crash_hook = nullptr;

  // Resume against a DIFFERENT dataset: the replayed steps cannot match the
  // journaled BEGIN records, and the runner must refuse rather than blend
  // two campaigns.
  const sim::Dataset other = small_dataset(18);
  EXPECT_THROW(sim::simulate_durable(other, "eta2", options, 4, durable),
               io::CorruptSnapshotError);
}

TEST_F(DurableRunnerTest, RetryDelayShapes) {
  core::DurableOptions options;
  // Backoff disabled (the default): no attempt ever sleeps.
  EXPECT_EQ(core::DurableRunner::retry_delay_ms(options, 1, 0, 1), 0u);
  options.retry_backoff_ms = 100;
  // Attempt 0 is the first try, never delayed.
  EXPECT_EQ(core::DurableRunner::retry_delay_ms(options, 1, 0, 0), 0u);
  // Default multiplier 1.0: the historical linear ramp k * base.
  EXPECT_EQ(core::DurableRunner::retry_delay_ms(options, 1, 0, 1), 100u);
  EXPECT_EQ(core::DurableRunner::retry_delay_ms(options, 1, 0, 2), 200u);
  EXPECT_EQ(core::DurableRunner::retry_delay_ms(options, 1, 0, 3), 300u);
  // Exponential: base * multiplier^(k-1).
  options.retry_backoff_multiplier = 2.0;
  EXPECT_EQ(core::DurableRunner::retry_delay_ms(options, 1, 0, 1), 100u);
  EXPECT_EQ(core::DurableRunner::retry_delay_ms(options, 1, 0, 2), 200u);
  EXPECT_EQ(core::DurableRunner::retry_delay_ms(options, 1, 0, 4), 800u);
  // Clamped to the cap once the curve crosses it.
  options.retry_backoff_max_ms = 250;
  EXPECT_EQ(core::DurableRunner::retry_delay_ms(options, 1, 0, 2), 200u);
  EXPECT_EQ(core::DurableRunner::retry_delay_ms(options, 1, 0, 4), 250u);
  EXPECT_EQ(core::DurableRunner::retry_delay_ms(options, 1, 0, 10), 250u);
}

TEST_F(DurableRunnerTest, RetryJitterIsBoundedAndDeterministic) {
  core::DurableOptions options;
  options.retry_backoff_ms = 1000;
  options.retry_jitter = 0.5;
  bool saw_spread = false;
  std::uint64_t previous = 0;
  for (std::uint64_t step = 0; step < 32; ++step) {
    const std::uint64_t delay =
        core::DurableRunner::retry_delay_ms(options, 7, step, 1);
    // Jitter stretches attempt 1's base (1000ms) into [500, 1500].
    EXPECT_GE(delay, 500u);
    EXPECT_LE(delay, 1500u);
    // Pure function of (options, seed, step, attempt).
    EXPECT_EQ(core::DurableRunner::retry_delay_ms(options, 7, step, 1), delay);
    if (step > 0 && delay != previous) saw_spread = true;
    previous = delay;
  }
  // The hash actually varies across steps (no thundering herd).
  EXPECT_TRUE(saw_spread);
  // A different campaign seed draws a different schedule.
  EXPECT_NE(core::DurableRunner::retry_delay_ms(options, 7, 0, 1),
            core::DurableRunner::retry_delay_ms(options, 8, 0, 1));
}

TEST_F(DurableRunnerTest, CancelledStepQuarantinesWithoutRetry) {
  const sim::Dataset dataset = small_dataset();
  const std::vector<double> capacities(dataset.user_count(), 12.0);
  core::DurableOptions durable = durable_options(/*cadence=*/100);
  durable.max_step_retries = 5;  // must NOT be consumed by a cancellation
  int attempts_seen = 0;
  durable.attempt_hook = [&](std::uint64_t, int) { ++attempts_seen; };

  const auto make_callbacks = [&](core::DurableRunner*& self) {
    core::DurableRunner::Callbacks callbacks;
    callbacks.make_collect = [&](std::uint64_t step) -> core::CollectFn {
      const auto ids = dataset.tasks_of_day(static_cast<int>(step));
      auto observe_rng = std::make_shared<Rng>(self->rng().fork(step + 1));
      return [&, ids, observe_rng, step](std::size_t local, std::size_t user) {
        if (step == 1) throw CancelledError("deadline exceeded");
        return sim::observe(dataset, user, ids[local], *observe_rng);
      };
    };
    return callbacks;
  };

  const auto day_batch = [&](std::uint64_t step) {
    std::vector<core::NewTask> batch;
    for (const std::size_t j : dataset.tasks_of_day(static_cast<int>(step))) {
      core::NewTask t;
      t.known_domain = dataset.tasks[j].true_domain;
      t.processing_time = dataset.tasks[j].processing_time;
      batch.push_back(t);
    }
    return batch;
  };

  {
    core::DurableRunner* self = nullptr;
    core::DurableRunner runner(dataset.user_count(), core::Eta2Config{},
                               nullptr, 4, durable, make_callbacks(self));
    self = &runner;
    for (std::uint64_t step = 0; step < 3; ++step) {
      attempts_seen = 0;
      const auto outcome = runner.run_step(day_batch(step), capacities);
      if (step == 1) {
        // Terminal: one attempt, immediate rollback + quarantine, and the
        // cancellation is recorded as such.
        EXPECT_TRUE(outcome.quarantined);
        EXPECT_TRUE(outcome.cancelled);
        EXPECT_EQ(outcome.attempts, 1);
        EXPECT_EQ(attempts_seen, 1);
        EXPECT_NE(outcome.error.find("deadline"), std::string::npos);
      } else {
        EXPECT_FALSE(outcome.quarantined);
        EXPECT_FALSE(outcome.cancelled);
      }
    }
  }

  // The `cancelled 1` quarantine line survives the journal round trip: a
  // reopened campaign replays the step as a cancelled quarantine.
  core::DurableRunner* self = nullptr;
  core::DurableRunner reopened(dataset.user_count(), core::Eta2Config{},
                               nullptr, 4, durable, make_callbacks(self));
  self = &reopened;
  EXPECT_TRUE(reopened.resumed());
  for (std::uint64_t step = reopened.next_step(); step < 3; ++step) {
    const auto outcome = reopened.run_step(day_batch(step), capacities);
    if (step == 1) {
      EXPECT_TRUE(outcome.quarantined);
      EXPECT_TRUE(outcome.cancelled);
      EXPECT_TRUE(outcome.replayed);
    }
  }
  EXPECT_EQ(reopened.quarantined_steps(), 1u);
}

}  // namespace
}  // namespace eta2
