#include "core/one_shot.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "text/embedder.h"

namespace eta2::core {
namespace {

// Two latent domains, users good at one each; observations follow the
// paper's model.
struct Scenario {
  truth::ObservationSet data{0, 0};
  std::vector<std::string> descriptions;
  std::vector<std::size_t> labels;
  std::vector<double> mu;
};

Scenario make_scenario(std::size_t users, std::size_t tasks,
                       std::uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.data = truth::ObservationSet(users, tasks);
  for (std::size_t j = 0; j < tasks; ++j) {
    const std::size_t domain = j % 2;
    s.labels.push_back(domain);
    s.descriptions.push_back(domain == 0 ? "noise near the park"
                                         : "salary at the bank");
    const double mu = rng.uniform(0.0, 20.0);
    s.mu.push_back(mu);
    for (std::size_t i = 0; i < users; ++i) {
      const bool expert = (i % 2) == domain;
      s.data.add(j, i, rng.normal(mu, expert ? 0.3 : 2.5));
    }
  }
  return s;
}

TEST(OneShotTest, LabeledPathRecoversTruth) {
  const Scenario s = make_scenario(8, 60, 3);
  const OneShotResult r = analyze_labeled(s.labels, s.data);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.domain_count, 2u);
  double err = 0.0;
  for (std::size_t j = 0; j < s.mu.size(); ++j) {
    EXPECT_FALSE(std::isnan(r.truth[j]));
    err += std::fabs(r.truth[j] - s.mu[j]);
  }
  EXPECT_LT(err / static_cast<double>(s.mu.size()), 0.3);
}

TEST(OneShotTest, LabeledPathLearnsPerDomainExpertise) {
  const Scenario s = make_scenario(8, 120, 5);
  const OneShotResult r = analyze_labeled(s.labels, s.data);
  // Even users are experts in domain 0, odd users in domain 1.
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t strong = i % 2;
    EXPECT_GT(r.expertise[i][strong], r.expertise[i][1 - strong])
        << "user " << i;
  }
}

TEST(OneShotTest, DescribedPathClustersAndMatchesLabeled) {
  const Scenario s = make_scenario(6, 40, 7);
  const text::HashEmbedder embedder(32);
  const OneShotResult described =
      analyze_described(s.descriptions, s.data, embedder);
  EXPECT_EQ(described.domain_count, 2u);
  // The two identical description groups map to two domains consistently.
  for (std::size_t j = 2; j < s.labels.size(); ++j) {
    EXPECT_EQ(described.task_domains[j], described.task_domains[j % 2]);
  }
  const OneShotResult labeled = analyze_labeled(s.labels, s.data);
  for (std::size_t j = 0; j < s.mu.size(); ++j) {
    EXPECT_NEAR(described.truth[j], labeled.truth[j], 1e-9);
  }
}

TEST(OneShotTest, ExternalLabelsAreDensified) {
  truth::ObservationSet data(2, 3);
  data.add(0, 0, 1.0);
  data.add(1, 0, 2.0);
  data.add(2, 0, 3.0);
  const std::vector<std::size_t> sparse_labels = {42, 7, 42};
  const OneShotResult r = analyze_labeled(sparse_labels, data);
  EXPECT_EQ(r.domain_count, 2u);
  EXPECT_EQ(r.task_domains[0], r.task_domains[2]);
  EXPECT_NE(r.task_domains[0], r.task_domains[1]);
}

TEST(OneShotTest, RejectsShapeMismatches) {
  truth::ObservationSet data(1, 2);
  const std::vector<std::size_t> labels = {0};
  EXPECT_THROW(analyze_labeled(labels, data), std::invalid_argument);
  EXPECT_THROW(analyze_labeled({}, truth::ObservationSet(1, 0)),
               std::invalid_argument);
  const text::HashEmbedder embedder(8);
  const std::vector<std::string> descriptions = {"one"};
  EXPECT_THROW(analyze_described(descriptions, data, embedder),
               std::invalid_argument);
}

}  // namespace
}  // namespace eta2::core
