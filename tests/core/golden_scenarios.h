// Shared scenario runner for the golden end-to-end determinism test.
//
// Runs a fixed multi-step workload through Eta2Server and formats every
// step output (truth, sigma, allocation, cost, iteration counts, domains)
// with full bit precision (hexfloat). The golden constants embedded in
// golden_step_test.cpp were captured by running these exact scenarios
// against the pre-refactor (PR 1) implementation; any behavioral drift in
// the pipeline shows up as a transcript mismatch.
#ifndef ETA2_TESTS_CORE_GOLDEN_SCENARIOS_H
#define ETA2_TESTS_CORE_GOLDEN_SCENARIOS_H

#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/eta2_server.h"
#include "text/embedder.h"

namespace eta2::testing {

inline std::string golden_hex(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

inline std::string format_step(int step, const core::Eta2Server::StepResult& r) {
  std::ostringstream out;
  out << "step " << step << " warmup=" << (r.warmup ? 1 : 0)
      << " mle_iters=" << r.mle_iterations
      << " data_iters=" << r.data_iterations
      << " cost=" << golden_hex(r.cost) << '\n';
  out << "domains:";
  for (const auto d : r.task_domains) out << ' ' << d;
  out << '\n';
  out << "alloc:";
  for (std::size_t j = 0; j < r.truth.size(); ++j) {
    out << ' ' << j << ':';
    bool first = true;
    for (const std::size_t u : r.allocation.users_of(j)) {
      if (!first) out << ',';
      first = false;
      out << u;
    }
  }
  out << '\n';
  out << "truth:";
  for (const double v : r.truth) out << ' ' << golden_hex(v);
  out << '\n';
  out << "sigma:";
  for (const double v : r.sigma) out << ' ' << golden_hex(v);
  out << '\n';
  return out.str();
}

struct GoldenRun {
  std::string transcript;  // formatted steps 0..N-1 on the fresh server
  std::string saved;       // save() blob after the scripted steps
  std::string post;        // one more step after save, on the saved server
};

// Deterministic, state-free collect callback: the value depends only on
// (step, local task, user), never on call order, so transcripts isolate
// pipeline behavior from collection order.
inline core::Eta2Server::CollectFn golden_collect(int step) {
  return [step](std::size_t local, std::size_t user) -> std::optional<double> {
    if ((user + 3 * local + static_cast<std::size_t>(step)) % 11 == 0) {
      return std::nullopt;  // non-responder
    }
    const double base =
        10.0 + 3.0 * static_cast<double>(local) + static_cast<double>(step);
    const double noise =
        std::sin(static_cast<double>(user * 7 + local * 3) + step);
    return base + 0.5 * noise;
  };
}

// Loads a labeled-scenario save blob (any vintage — including v1 blobs
// captured from the pre-refactor build) and runs the scripted post step.
inline std::string labeled_post_step(const core::Eta2Config& config,
                                     const std::string& saved) {
  const std::size_t users = 6;
  const std::vector<double> caps(users, 6.0);
  std::istringstream in(saved);
  core::Eta2Server restored = core::Eta2Server::load(in, config, nullptr);
  Rng post_rng(4242);
  std::vector<core::Eta2Server::NewTask> tasks(5);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    tasks[t].known_domain = t % 3;
    tasks[t].processing_time = 1.0 + 0.25 * static_cast<double>(t);
    tasks[t].cost = 1.0 + static_cast<double>(t % 2);
  }
  return format_step(3, restored.step(tasks, caps, golden_collect(3),
                                      post_rng));
}

// Known-domain scenario: 6 users, 3 steps x 5 labeled tasks covering the
// warm-up (random) path on step 0 and the configured allocator afterwards.
inline GoldenRun run_labeled_scenario(core::Eta2Config config) {
  const std::size_t users = 6;
  const std::vector<double> caps(users, 6.0);
  core::Eta2Server server(users, config, nullptr);
  Rng rng(42);

  GoldenRun run;
  for (int step = 0; step < 3; ++step) {
    std::vector<core::Eta2Server::NewTask> tasks(5);
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      tasks[t].known_domain = (t + static_cast<std::size_t>(step)) % 3;
      tasks[t].processing_time = 1.0 + 0.25 * static_cast<double>(t);
      tasks[t].cost = 1.0 + static_cast<double>(t % 2);
    }
    run.transcript +=
        format_step(step, server.step(tasks, caps, golden_collect(step), rng));
  }

  std::ostringstream saved;
  server.save(saved);
  run.saved = saved.str();
  run.post = labeled_post_step(config, run.saved);
  return run;
}

inline const std::vector<std::string>& golden_descriptions() {
  static const std::vector<std::string> descriptions = {
      "noise near the park",    "noise around the park",
      "salary at the bank",     "salary of the bank",
      "traffic on the bridge",  "traffic over the bridge",
  };
  return descriptions;
}

// Loads a described-scenario save blob and runs the scripted post step.
inline std::string described_post_step(const core::Eta2Config& config,
                                       const std::string& saved) {
  const std::size_t users = 4;
  const std::vector<double> caps(users, 8.0);
  auto embedder = std::make_shared<text::HashEmbedder>(16);
  std::istringstream in(saved);
  core::Eta2Server restored = core::Eta2Server::load(in, config, embedder);
  Rng post_rng(777);
  std::vector<core::Eta2Server::NewTask> tasks(golden_descriptions().size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    tasks[t].description = golden_descriptions()[t];
    tasks[t].processing_time = 1.0;
    tasks[t].cost = 1.0;
  }
  return format_step(2, restored.step(tasks, caps, golden_collect(2),
                                      post_rng));
}

// Described-task scenario: hash embeddings + dynamic clustering (Module 1's
// pairword path), two steps so the second reuses learned domains.
inline GoldenRun run_described_scenario(core::Eta2Config config) {
  const std::size_t users = 4;
  const std::vector<double> caps(users, 8.0);
  auto embedder = std::make_shared<text::HashEmbedder>(16);
  core::Eta2Server server(users, config, embedder);
  Rng rng(7);

  const std::vector<std::string>& descriptions = golden_descriptions();
  GoldenRun run;
  for (int step = 0; step < 2; ++step) {
    std::vector<core::Eta2Server::NewTask> tasks(descriptions.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      tasks[t].description = descriptions[t];
      tasks[t].processing_time = 1.0 + 0.5 * static_cast<double>(t % 2);
      tasks[t].cost = 1.0;
    }
    run.transcript +=
        format_step(step, server.step(tasks, caps, golden_collect(step), rng));
  }

  std::ostringstream saved;
  server.save(saved);
  run.saved = saved.str();
  run.post = described_post_step(config, run.saved);
  return run;
}

}  // namespace eta2::testing

#endif  // ETA2_TESTS_CORE_GOLDEN_SCENARIOS_H
