// Compile-and-link check of the umbrella header: every public API must be
// reachable through a single include.
#include "eta2.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeaderTest, PublicTypesAreUsable) {
  eta2::Rng rng(1);
  EXPECT_GE(rng.uniform01(), 0.0);

  const eta2::core::Eta2Config config;
  EXPECT_DOUBLE_EQ(config.epsilon, 0.1);

  eta2::truth::ObservationSet data(2, 1);
  data.add(0, 0, 1.0);
  data.add(0, 1, 3.0);
  const eta2::truth::MeanBaseline mean;
  EXPECT_DOUBLE_EQ(mean.estimate(data).truth[0], 2.0);

  EXPECT_NEAR(eta2::stats::normal_cdf(0.0), 0.5, 1e-12);

  const eta2::text::HashEmbedder embedder(8);
  EXPECT_EQ(embedder.dimension(), 8u);
}

}  // namespace
