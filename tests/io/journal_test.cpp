// Framing suite for io/journal.h: the CRC-framed WAL must recover every
// complete record and nothing else. Truncated tails (the normal post-crash
// state) end the scan cleanly, bit flips are flagged as corruption, empty
// segments are clean, rotation keeps records ordered across segment files,
// and reopening a torn journal truncates the tail so appends resume after
// the last complete record.
#include "io/journal.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "common/flags.h"
#include "io/snapshot.h"

namespace eta2::io {
namespace {

using eta2::Flags;

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("eta2_journal_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    // The suite exercises framing, not disk durability; skipping fsync keeps
    // it fast on slow filesystems.
    set_durable_fsync(false);
  }
  void TearDown() override {
    set_durable_fsync(true);
    fs::remove_all(dir_);
  }

  void write_segment(std::uint64_t index, std::string_view bytes) {
    std::ofstream out(dir_ + "/" + segment_file_name(index),
                      std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
};

TEST_F(JournalTest, FrameRoundTripsBinaryPayload) {
  const std::string payload("step inputs\nwith\0embedded NUL", 29);
  const std::string frame =
      frame_record(RecordType::kStepBegin, 42, payload);
  EXPECT_TRUE(frame.starts_with("eta2-wal v1 begin 42 "));

  const SegmentScan scan = scan_segment(frame);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_FALSE(scan.truncated);
  EXPECT_FALSE(scan.corrupt);
  EXPECT_EQ(scan.valid_bytes, frame.size());
  EXPECT_EQ(scan.records[0].type, RecordType::kStepBegin);
  EXPECT_EQ(scan.records[0].step, 42u);
  EXPECT_EQ(scan.records[0].payload, payload);
}

TEST_F(JournalTest, EmptySegmentScansClean) {
  const SegmentScan scan = scan_segment("");
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.truncated);
  EXPECT_FALSE(scan.corrupt);
  EXPECT_EQ(scan.valid_bytes, 0u);
}

TEST_F(JournalTest, TruncatedPayloadEndsScanAsTornNotCorrupt) {
  const std::string a = frame_record(RecordType::kStepBegin, 0, "inputs-0");
  const std::string b = frame_record(RecordType::kStepCommit, 0, "digest-0");
  // Cut the second frame mid-payload: exactly what kill -9 mid-append
  // leaves behind.
  const std::string torn = a + b.substr(0, b.size() - 3);

  const SegmentScan scan = scan_segment(torn);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.truncated);
  EXPECT_FALSE(scan.corrupt);
  EXPECT_EQ(scan.valid_bytes, a.size());  // recovery truncates to here
}

TEST_F(JournalTest, TruncatedHeaderEndsScanAsTorn) {
  const std::string a = frame_record(RecordType::kStepBegin, 7, "x");
  const SegmentScan scan = scan_segment(a + "eta2-wal v1 com");
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.truncated);
  EXPECT_FALSE(scan.corrupt);
  EXPECT_EQ(scan.valid_bytes, a.size());
}

TEST_F(JournalTest, BitFlippedPayloadIsCorruptNotTorn) {
  const std::string a = frame_record(RecordType::kStepBegin, 0, "inputs-0");
  std::string b = frame_record(RecordType::kStepCommit, 0, "digest-0");
  b[b.size() - 2] ^= 0x01;  // flip a payload bit; length stays right

  const SegmentScan scan = scan_segment(a + b);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_FALSE(scan.truncated);
  EXPECT_TRUE(scan.corrupt);
  EXPECT_NE(scan.diagnostic.find("CRC"), std::string::npos);
}

TEST_F(JournalTest, GarbageHeaderIsCorrupt) {
  const SegmentScan scan = scan_segment("not a journal at all\njunk");
  EXPECT_TRUE(scan.corrupt);
  EXPECT_TRUE(scan.records.empty());
}

TEST_F(JournalTest, UnknownRecordTypeIsCorrupt) {
  // Well-formed frame syntax, but a record type this version never wrote.
  const SegmentScan scan =
      scan_segment("eta2-wal v1 checkpoint 3 0 00000000\n");
  EXPECT_TRUE(scan.corrupt);
}

TEST_F(JournalTest, WriterAppendsAndScanReadsBack) {
  JournalWriter writer(dir_, {});
  writer.open(scan_journal(dir_));
  writer.append(RecordType::kStepBegin, 0, "in-0");
  writer.append(RecordType::kStepCommit, 0, "out-0");
  writer.append(RecordType::kStepQuarantine, 1, "err-1");

  const JournalScan scan = scan_journal(dir_);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_FALSE(scan.truncated);
  EXPECT_FALSE(scan.corrupt);
  EXPECT_EQ(scan.records[2].type, RecordType::kStepQuarantine);
  EXPECT_EQ(scan.records[2].step, 1u);
  EXPECT_EQ(scan.records[2].payload, "err-1");
}

TEST_F(JournalTest, RotationBoundaryKeepsRecordsOrderedAcrossSegments) {
  JournalWriter::Options options;
  options.max_segment_bytes = 1;  // every append lands in a fresh segment
  JournalWriter writer(dir_, options);
  writer.open(scan_journal(dir_));
  for (std::uint64_t step = 0; step < 5; ++step) {
    writer.append(RecordType::kStepBegin, step,
                  "in-" + std::to_string(step));
    writer.append(RecordType::kStepCommit, step,
                  "out-" + std::to_string(step));
  }
  EXPECT_GT(writer.segment_index(), 1u);

  const JournalScan scan = scan_journal(dir_);
  ASSERT_EQ(scan.records.size(), 10u);
  EXPECT_FALSE(scan.truncated);
  EXPECT_FALSE(scan.corrupt);
  for (std::uint64_t step = 0; step < 5; ++step) {
    EXPECT_EQ(scan.records[2 * step].step, step);
    EXPECT_EQ(scan.records[2 * step].type, RecordType::kStepBegin);
    EXPECT_EQ(scan.records[2 * step + 1].type, RecordType::kStepCommit);
  }
}

TEST_F(JournalTest, ExplicitRotateStartsFreshSegmentEvenWhenEmpty) {
  JournalWriter writer(dir_, {});
  writer.open(scan_journal(dir_));
  EXPECT_EQ(writer.segment_index(), 1u);
  writer.rotate();  // rotating an empty segment is legal (snapshot boundary)
  writer.rotate();
  EXPECT_EQ(writer.segment_index(), 3u);
  writer.append(RecordType::kStepBegin, 9, "in-9");

  // Empty mid-list segments are clean; the record lands in segment 3.
  const JournalScan scan = scan_journal(dir_);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_FALSE(scan.corrupt);
  ASSERT_EQ(scan.segment_indices.size(), 3u);
  EXPECT_EQ(scan.segment_max_step[2], 9u);
}

TEST_F(JournalTest, PruneDeletesOnlyFullyCoveredClosedSegments) {
  JournalWriter writer(dir_, {});
  writer.open(scan_journal(dir_));
  for (std::uint64_t step = 0; step < 6; ++step) {
    writer.append(RecordType::kStepCommit, step, "out");
    if (step % 2 == 1) writer.rotate();  // segments hold steps {0,1},{2,3},...
  }
  ASSERT_EQ(list_segments(dir_).size(), 4u);

  writer.prune(4);  // steps 0-3 covered: segments 1 and 2 go, 3 stays
  const auto kept = list_segments(dir_);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 3u);
  EXPECT_EQ(kept[1], 4u);

  writer.prune(100);  // never touches the open segment
  ASSERT_EQ(list_segments(dir_).size(), 1u);
  EXPECT_EQ(list_segments(dir_)[0], writer.segment_index());
}

TEST_F(JournalTest, ReopenTruncatesTornTailAndResumesAppending) {
  const std::string a = frame_record(RecordType::kStepBegin, 0, "in-0");
  const std::string b = frame_record(RecordType::kStepCommit, 0, "out-0");
  write_segment(1, a + b.substr(0, b.size() / 2));

  const JournalScan before = scan_journal(dir_);
  EXPECT_TRUE(before.truncated);
  ASSERT_EQ(before.records.size(), 1u);

  JournalWriter writer(dir_, {});
  writer.open(before);
  EXPECT_EQ(writer.segment_bytes(), a.size());  // torn half gone
  writer.append(RecordType::kStepCommit, 0, "out-0");

  const JournalScan after = scan_journal(dir_);
  EXPECT_FALSE(after.truncated);
  EXPECT_FALSE(after.corrupt);
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_EQ(after.records[1].payload, "out-0");
}

TEST_F(JournalTest, ReopenDeletesOrphanSegmentsPastTheDamage) {
  // Segment 1 is corrupt mid-list, segment 2 exists beyond it: the scan
  // stops at 1, so 2's records have no consistent prefix and must go.
  std::string seg1 = frame_record(RecordType::kStepCommit, 0, "out-0");
  seg1 += frame_record(RecordType::kStepCommit, 1, "out-1");
  seg1[seg1.size() - 1] ^= 0x01;
  write_segment(1, seg1);
  write_segment(2, frame_record(RecordType::kStepCommit, 2, "out-2"));

  const JournalScan scan = scan_journal(dir_);
  EXPECT_TRUE(scan.corrupt);
  ASSERT_EQ(scan.records.size(), 1u);

  JournalWriter writer(dir_, {});
  writer.open(scan);
  const auto kept = list_segments(dir_);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], 1u);

  const JournalScan after = scan_journal(dir_);
  EXPECT_FALSE(after.corrupt);
  ASSERT_EQ(after.records.size(), 1u);
  EXPECT_EQ(after.records[0].payload, "out-0");
}

TEST_F(JournalTest, ScanJournalOnAbsentDirectoryIsEmptyAndClean) {
  const JournalScan scan = scan_journal(dir_ + "/does_not_exist");
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.truncated);
  EXPECT_FALSE(scan.corrupt);
}

TEST_F(JournalTest, ManifestRoundTripPreservesEveryToken) {
  const std::vector<std::string> tokens = {
      "--durable=" + dir_, "--dataset=synthetic", "--seed=7"};
  write_manifest(dir_, tokens);
  EXPECT_EQ(read_manifest(dir_), tokens);

  // The `eta2 resume` reconstruction path: the FIRST manifest line (here
  // --durable, the flag resume gates on) must survive flag parsing.
  const Flags flags = Flags::from_tokens(read_manifest(dir_));
  EXPECT_EQ(flags.get("durable", ""), dir_);
  EXPECT_EQ(flags.get("dataset", ""), "synthetic");
  EXPECT_EQ(flags.get_int("seed", 0), 7);
}

TEST_F(JournalTest, EmptyManifestReadsAsNoTokens) {
  write_manifest(dir_, {});
  EXPECT_TRUE(read_manifest(dir_).empty());
}

TEST_F(JournalTest, AbsentManifestThrows) {
  EXPECT_THROW((void)read_manifest(dir_ + "/does_not_exist"),
               std::runtime_error);
}

// --- rotation / reader races -----------------------------------------------
// The serve layer scans a campaign's journal (recovery, torture golden
// comparisons) while the writer is live in another process or thread.
// scan_journal must tolerate segments rotating and vanishing under it:
// whatever prefix it observes is well-formed, and a segment pruned between
// directory listing and open is skipped, never an error. These two run
// under the `sanitize` label, so the TSan job checks the interleavings.

TEST_F(JournalTest, ScanWhileWriterRotatesSeesWellFormedPrefix) {
  JournalWriter::Options options;
  options.max_segment_bytes = 256;  // rotate every few records
  JournalWriter writer(dir_, options);
  writer.open(scan_journal(dir_));

  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::thread reader([&] {
    while (!done.load()) {
      const JournalScan scan = scan_journal(dir_);
      if (scan.corrupt) {
        failed.store(true);
        return;
      }
      // Steps in a scanned prefix are contiguous from some floor: the
      // writer appends in order and rotation never reorders.
      for (std::size_t i = 1; i < scan.records.size(); ++i) {
        if (scan.records[i].step != scan.records[i - 1].step + 1) {
          failed.store(true);
          return;
        }
      }
    }
  });
  for (std::uint64_t step = 0; step < 400; ++step) {
    writer.append(RecordType::kStepCommit, step,
                  "digest " + std::to_string(step));
  }
  done.store(true);
  reader.join();
  EXPECT_FALSE(failed.load());
  const JournalScan final_scan = scan_journal(dir_);
  EXPECT_FALSE(final_scan.corrupt);
  ASSERT_EQ(final_scan.records.size(), 400u);
}

TEST_F(JournalTest, ScanWhilePruneDeletesSegmentsUnderneath) {
  JournalWriter::Options options;
  options.max_segment_bytes = 128;
  JournalWriter writer(dir_, options);
  writer.open(scan_journal(dir_));

  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::thread reader([&] {
    while (!done.load()) {
      // Segments may vanish between the directory listing and the open;
      // the scan must skip them silently, never report corruption.
      const JournalScan scan = scan_journal(dir_);
      if (scan.corrupt) {
        failed.store(true);
        return;
      }
    }
  });
  for (std::uint64_t step = 0; step < 300; ++step) {
    writer.append(RecordType::kStepCommit, step,
                  "digest " + std::to_string(step));
    if (step % 16 == 15) writer.prune(step - 8);
  }
  done.store(true);
  reader.join();
  EXPECT_FALSE(failed.load());
  // The surviving suffix still scans clean and ends at the last step.
  const JournalScan final_scan = scan_journal(dir_);
  EXPECT_FALSE(final_scan.corrupt);
  ASSERT_FALSE(final_scan.records.empty());
  EXPECT_EQ(final_scan.records.back().step, 299u);
}

TEST_F(JournalTest, ReopenWhileOldWriterRotatedKeepsSuffixConsistent) {
  // A writer that rotated right before dying must hand the next writer a
  // directory whose newest segment is the append target; the reopen path
  // (open(scan)) continues exactly where the segment chain ends.
  {
    JournalWriter::Options options;
    options.max_segment_bytes = 64;
    JournalWriter writer(dir_, options);
    writer.open(scan_journal(dir_));
    for (std::uint64_t step = 0; step < 10; ++step) {
      writer.append(RecordType::kStepCommit, step, "x");
    }
    writer.rotate();  // dies with a fresh empty segment open
  }
  JournalWriter reopened(dir_, {});
  reopened.open(scan_journal(dir_));
  reopened.append(RecordType::kStepCommit, 10, "y");
  const JournalScan scan = scan_journal(dir_);
  EXPECT_FALSE(scan.corrupt);
  ASSERT_EQ(scan.records.size(), 11u);
  EXPECT_EQ(scan.records.back().step, 10u);
}

}  // namespace
}  // namespace eta2::io
