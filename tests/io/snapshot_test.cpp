// Crash-safety suite for io/snapshot.h: the CRC-checked v2 envelope must
// detect bit flips and truncation with the typed CorruptSnapshotError,
// pre-envelope v1 blobs must keep loading, and the tmp+rename write must
// leave the previous checkpoint intact when the process dies before the
// rename.
#include "io/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "sim/dataset.h"

namespace eta2::io {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SnapshotTest, Crc32MatchesKnownCheckValue) {
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
}

TEST(SnapshotTest, WrapUnwrapRoundTripsArbitraryPayload) {
  const std::string payload = "expertise-store v1\n3 2\n0.5 -1\n\nbytes \t\n";
  const std::string blob = wrap_snapshot(payload);
  EXPECT_TRUE(blob.starts_with("eta2-snapshot v2 "));
  EXPECT_EQ(unwrap_snapshot(blob), payload);
  EXPECT_EQ(unwrap_snapshot(wrap_snapshot("")), "");
}

TEST(SnapshotTest, BlobWithoutHeaderPassesThroughAsV1) {
  const std::string v1 = "expertise-store v1\n2 1\n0 0\n";
  EXPECT_EQ(unwrap_snapshot(v1), v1);
}

TEST(SnapshotTest, BitFlipRaisesCorruptSnapshotError) {
  std::string blob = wrap_snapshot("a perfectly healthy payload");
  blob[blob.size() / 2] ^= 0x01;  // single-bit flip inside the payload
  EXPECT_THROW(unwrap_snapshot(blob), CorruptSnapshotError);
}

TEST(SnapshotTest, TruncationRaisesCorruptSnapshotError) {
  const std::string blob = wrap_snapshot("a payload that will be cut short");
  EXPECT_THROW(unwrap_snapshot(blob.substr(0, blob.size() - 5)),
               CorruptSnapshotError);
}

TEST(SnapshotTest, MalformedHeaderRaisesCorruptSnapshotError) {
  // Magic present but the header line never terminates.
  EXPECT_THROW(unwrap_snapshot("eta2-snapshot v2 10 deadbeef"),
               CorruptSnapshotError);
  // Non-numeric length.
  EXPECT_THROW(unwrap_snapshot("eta2-snapshot v2 ten deadbeef\npayload"),
               CorruptSnapshotError);
  // Unknown version.
  EXPECT_THROW(unwrap_snapshot("eta2-snapshot v9 4 00000000\nabcd"),
               CorruptSnapshotError);
}

TEST(SnapshotTest, AtomicWriteReplacesContents) {
  const std::string path = temp_path("eta2_snapshot_atomic.txt");
  atomic_write_file(path, "first");
  atomic_write_file(path, "second");
  EXPECT_EQ(read_file(path), "second");
  std::remove(path.c_str());
}

TEST(SnapshotTest, CrashBeforeRenameLeavesPreviousFileIntact) {
  const std::string path = temp_path("eta2_snapshot_crash.txt");
  atomic_write_file(path, "checkpoint day 3");
  // Simulate the process dying after the tmp file is written but before
  // the rename: the hook throws at exactly that instant.
  EXPECT_THROW(atomic_write_file(path, "half-finished checkpoint",
                                 [] { throw std::runtime_error("killed"); }),
               std::runtime_error);
  EXPECT_EQ(read_file(path), "checkpoint day 3");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(SnapshotTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/eta2/none.txt"), std::runtime_error);
}

// Runs a few days of a known-domain campaign so the server has learned
// state worth checkpointing.
core::Eta2Server warmed_server(const sim::Dataset& dataset,
                               const core::Eta2Config& config) {
  core::Eta2Server server(dataset.user_count(), config, nullptr);
  Rng rng(11);
  for (int day = 0; day <= 1; ++day) {
    const auto ids = dataset.tasks_of_day(day);
    std::vector<core::NewTask> batch;
    for (const auto j : ids) {
      core::NewTask t;
      t.known_domain = dataset.tasks[j].true_domain;
      t.processing_time = dataset.tasks[j].processing_time;
      batch.push_back(t);
    }
    std::vector<double> caps;
    for (const auto& u : dataset.users) caps.push_back(u.capacity);
    Rng observe_rng = rng.fork(static_cast<std::uint64_t>(day) + 1);
    server.step(
        batch, caps,
        [&](std::size_t local, std::size_t user) {
          return sim::observe(dataset, user, ids[local], observe_rng);
        },
        rng);
  }
  return server;
}

std::string server_bytes(const core::Eta2Server& server) {
  std::ostringstream out;
  server.save(out);
  return out.str();
}

TEST(SnapshotTest, ServerFileRoundTripPreservesState) {
  sim::SyntheticOptions options;
  options.users = 12;
  options.tasks = 60;
  options.domains = 3;
  const sim::Dataset dataset = sim::make_synthetic(options, 21);
  const core::Eta2Config config;
  const core::Eta2Server server = warmed_server(dataset, config);

  const std::string path = temp_path("eta2_snapshot_server.txt");
  save_server_snapshot(server, path);
  const core::Eta2Server restored = load_server_snapshot(path, config, nullptr);
  EXPECT_EQ(server_bytes(restored), server_bytes(server));
  EXPECT_TRUE(restored.warmed_up());

  // Corrupt the file on disk: the load must fail loudly and typed.
  std::string blob = read_file(path);
  blob[blob.size() - 2] ^= 0x40;
  atomic_write_file(path, blob);
  EXPECT_THROW(load_server_snapshot(path, config, nullptr),
               CorruptSnapshotError);
  std::remove(path.c_str());
}

TEST(SnapshotTest, BareV1ServerFileStillLoads) {
  sim::SyntheticOptions options;
  options.users = 10;
  options.tasks = 40;
  const sim::Dataset dataset = sim::make_synthetic(options, 8);
  const core::Eta2Config config;
  const core::Eta2Server server = warmed_server(dataset, config);

  // A pre-envelope checkpoint: the raw v1 text block, no v2 header.
  const std::string path = temp_path("eta2_snapshot_server_v1.txt");
  atomic_write_file(path, server_bytes(server));
  const core::Eta2Server restored = load_server_snapshot(path, config, nullptr);
  EXPECT_EQ(server_bytes(restored), server_bytes(server));
  std::remove(path.c_str());
}

TEST(SnapshotTest, StoreFileRoundTrip) {
  truth::ExpertiseStore store(6);
  store.add_domain();
  store.add_domain();
  store.add_domain();

  const std::string path = temp_path("eta2_snapshot_store.txt");
  save_store_snapshot(store, path);
  const truth::ExpertiseStore restored =
      load_store_snapshot(path, truth::MleOptions{});
  std::ostringstream a;
  std::ostringstream b;
  store.save(a);
  restored.save(b);
  EXPECT_EQ(a.str(), b.str());

  EXPECT_THROW(load_store_snapshot(path + ".missing", truth::MleOptions{}),
               std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eta2::io
