#include "io/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/csv.h"
#include "io/results_io.h"

namespace eta2::io {
namespace {

sim::Dataset sample_dataset() {
  sim::SurveyOptions options;
  options.users = 8;
  options.tasks = 12;
  return sim::make_survey_like(options, 5);
}

TEST(DatasetIoTest, StreamRoundTripPreservesEverything) {
  const sim::Dataset original = sample_dataset();
  std::ostringstream users;
  std::ostringstream tasks;
  write_users_csv(original, users);
  write_tasks_csv(original, tasks);

  const sim::Dataset loaded =
      read_dataset_csv(users.str(), tasks.str(), "roundtrip");
  EXPECT_EQ(loaded.name, "roundtrip");
  ASSERT_EQ(loaded.user_count(), original.user_count());
  ASSERT_EQ(loaded.task_count(), original.task_count());
  EXPECT_EQ(loaded.latent_domain_count, original.latent_domain_count);
  EXPECT_EQ(loaded.has_descriptions, original.has_descriptions);
  for (std::size_t i = 0; i < original.user_count(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.users[i].capacity, original.users[i].capacity);
    ASSERT_EQ(loaded.users[i].true_expertise.size(),
              original.users[i].true_expertise.size());
    for (std::size_t k = 0; k < original.latent_domain_count; ++k) {
      EXPECT_NEAR(loaded.users[i].true_expertise[k],
                  original.users[i].true_expertise[k], 1e-6);
    }
  }
  for (std::size_t j = 0; j < original.task_count(); ++j) {
    EXPECT_NEAR(loaded.tasks[j].ground_truth, original.tasks[j].ground_truth,
                1e-6);
    EXPECT_NEAR(loaded.tasks[j].base_number, original.tasks[j].base_number,
                1e-6);
    EXPECT_NEAR(loaded.tasks[j].processing_time,
                original.tasks[j].processing_time, 1e-6);
    EXPECT_EQ(loaded.tasks[j].day, original.tasks[j].day);
    EXPECT_EQ(loaded.tasks[j].true_domain, original.tasks[j].true_domain);
    EXPECT_EQ(loaded.tasks[j].description, original.tasks[j].description);
  }
}

TEST(DatasetIoTest, DescriptionsWithCommasSurvive) {
  sim::Dataset d = sample_dataset();
  d.tasks[0].description = "price, of \"coffee\", at the cafeteria\nplease";
  std::ostringstream users;
  std::ostringstream tasks;
  write_users_csv(d, users);
  write_tasks_csv(d, tasks);
  // Note: raw newlines inside quoted fields are not supported by the
  // line-based reader; strip them like a client would.
  std::string desc = d.tasks[0].description;
  for (char& c : desc) {
    if (c == '\n') c = ' ';
  }
  d.tasks[0].description = desc;
  std::ostringstream tasks2;
  write_tasks_csv(d, tasks2);
  const sim::Dataset loaded = read_dataset_csv(users.str(), tasks2.str());
  EXPECT_EQ(loaded.tasks[0].description, desc);
}

TEST(DatasetIoTest, SyntheticDatasetMarksNoDescriptions) {
  sim::SyntheticOptions options;
  options.users = 5;
  options.tasks = 10;
  const sim::Dataset original = sim::make_synthetic(options, 2);
  std::ostringstream users;
  std::ostringstream tasks;
  write_users_csv(original, users);
  write_tasks_csv(original, tasks);
  const sim::Dataset loaded = read_dataset_csv(users.str(), tasks.str());
  EXPECT_FALSE(loaded.has_descriptions);
}

TEST(DatasetIoTest, RejectsMalformedInput) {
  EXPECT_THROW(read_dataset_csv("", ""), std::invalid_argument);
  EXPECT_THROW(read_dataset_csv("user_id,capacity,u_0\n0,12,1\n",
                                "task_id,day\n0,0\n"),
               std::invalid_argument);
  // Domain out of range.
  EXPECT_THROW(read_dataset_csv(
                   "user_id,capacity,u_0\n0,12,1\n",
                   "task_id,day,true_domain,ground_truth,base_number,"
                   "processing_time,cost,description\n0,0,5,1,1,1,1,x\n"),
               std::invalid_argument);
  // Garbage number.
  EXPECT_THROW(read_dataset_csv(
                   "user_id,capacity,u_0\n0,abc,1\n",
                   "task_id,day,true_domain,ground_truth,base_number,"
                   "processing_time,cost,description\n0,0,0,1,1,1,1,x\n"),
               std::invalid_argument);
}

TEST(DatasetIoTest, StrictModeDiagnosticNamesFileAndLine) {
  // Row on physical line 4 (header + blank line + good row) has a garbage
  // capacity; the thrown diagnostic must point exactly there.
  const std::string users =
      "user_id,capacity,u_0\n"
      "\n"
      "0,12,1\n"
      "1,oops,1\n";
  const std::string tasks =
      "task_id,day,true_domain,ground_truth,base_number,"
      "processing_time,cost,description\n"
      "0,0,0,1,1,1,1,x\n";
  try {
    read_dataset_csv(users, tasks);
    FAIL() << "strict mode must throw on the malformed row";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("users.csv:4:"),
              std::string::npos)
        << error.what();
  }
}

TEST(DatasetIoTest, LenientModeSkipsMalformedRowsAndReports) {
  const std::string users =
      "user_id,capacity,u_0\n"
      "0,12,1\n"
      "1,oops,1\n"
      "2,9,0.5\n";
  const std::string tasks =
      "task_id,day,true_domain,ground_truth,base_number,"
      "processing_time,cost,description\n"
      "0,0,0,1,1,1,1,x\n"
      "1,0,7,1,1,1,1,x\n"  // domain out of range
      "2,0,0,2,1,1\n";     // wrong width
  CsvReport report;
  const sim::Dataset loaded =
      read_dataset_csv(users, tasks, "lenient", CsvMode::kLenient, &report);
  EXPECT_EQ(loaded.user_count(), 2u);
  EXPECT_EQ(loaded.task_count(), 1u);
  EXPECT_EQ(report.rows_read, 3u);  // 2 users + 1 task accepted
  EXPECT_EQ(report.rows_skipped, 3u);
  ASSERT_EQ(report.diagnostics.size(), 3u);
  EXPECT_NE(report.diagnostics[0].find("users.csv:3:"), std::string::npos);
  EXPECT_NE(report.diagnostics[1].find("tasks.csv:3:"), std::string::npos);
  EXPECT_NE(report.diagnostics[2].find("tasks.csv:4:"), std::string::npos);
  EXPECT_NE(report.diagnostics[2].find("bad row width"), std::string::npos);
}

TEST(DatasetIoTest, LenientModeStillRequiresUsableRows) {
  // When every data row is malformed there is nothing to degrade to.
  CsvReport report;
  EXPECT_THROW(
      read_dataset_csv("user_id,capacity,u_0\n0,oops,1\n",
                       "task_id,day,true_domain,ground_truth,base_number,"
                       "processing_time,cost,description\n0,0,0,1,1,1,1,x\n",
                       "l", CsvMode::kLenient, &report),
      std::invalid_argument);
}

TEST(DatasetIoTest, FileRoundTrip) {
  const sim::Dataset original = sample_dataset();
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "eta2_io_test").string();
  save_dataset(original, prefix);
  const sim::Dataset loaded = load_dataset(prefix);
  EXPECT_EQ(loaded.task_count(), original.task_count());
  EXPECT_EQ(loaded.user_count(), original.user_count());
  std::remove((prefix + ".users.csv").c_str());
  std::remove((prefix + ".tasks.csv").c_str());
}

TEST(DatasetIoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_dataset("/nonexistent/path/xyz"), std::runtime_error);
}

TEST(ResultsIoTest, DayMetricsCsvShape) {
  sim::SyntheticOptions options;
  options.users = 20;
  options.tasks = 50;
  options.domains = 3;
  const sim::Dataset d = sim::make_synthetic(options, 3);
  const sim::SimOptions sim_options;
  const auto run = sim::simulate(d, "eta2", sim_options, 3);
  std::ostringstream out;
  write_day_metrics_csv(run, out);
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1 + run.days.size());
  EXPECT_EQ(rows[0][0], "day");
  EXPECT_EQ(rows[1][0], "0");
}

TEST(ResultsIoTest, SweepCsvShape) {
  const sim::SimOptions sim_options;
  const auto sweep = sim::sweep_seeds(
      [](std::uint64_t seed) {
        sim::SyntheticOptions o;
        o.users = 15;
        o.tasks = 40;
        o.domains = 2;
        return sim::make_synthetic(o, seed);
      },
      "eta2", sim_options, 2);
  std::ostringstream out;
  write_sweep_csv(sweep, out);
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 3u);  // header + 2 seeds
  EXPECT_EQ(rows[0][1], "overall_error");
}

}  // namespace
}  // namespace eta2::io
