#include "sim/dataset.h"

#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "stats/chi_square.h"
#include "stats/descriptive.h"
#include "text/pairword.h"

namespace eta2::sim {
namespace {

TEST(SyntheticDatasetTest, MatchesPaperSection613) {
  const Dataset d = make_synthetic(SyntheticOptions{}, 1);
  EXPECT_EQ(d.user_count(), 100u);
  EXPECT_EQ(d.task_count(), 1000u);
  EXPECT_EQ(d.latent_domain_count, 8u);
  EXPECT_FALSE(d.has_descriptions);
  for (const User& u : d.users) {
    ASSERT_EQ(u.true_expertise.size(), 8u);
    for (const double e : u.true_expertise) {
      EXPECT_GE(e, 0.0);
      EXPECT_LE(e, 3.0);
    }
  }
  for (const Task& t : d.tasks) {
    EXPECT_GE(t.ground_truth, 0.0);
    EXPECT_LE(t.ground_truth, 20.0);
    EXPECT_GE(t.base_number, 0.5);
    EXPECT_LE(t.base_number, 5.0);
    EXPECT_GE(t.processing_time, 0.5);
    EXPECT_LE(t.processing_time, 1.5);
    EXPECT_LT(t.true_domain, 8u);
    EXPECT_TRUE(t.description.empty());
  }
}

TEST(SyntheticDatasetTest, DeterministicPerSeed) {
  const Dataset a = make_synthetic(SyntheticOptions{}, 7);
  const Dataset b = make_synthetic(SyntheticOptions{}, 7);
  ASSERT_EQ(a.task_count(), b.task_count());
  for (std::size_t j = 0; j < a.task_count(); ++j) {
    EXPECT_DOUBLE_EQ(a.tasks[j].ground_truth, b.tasks[j].ground_truth);
    EXPECT_EQ(a.tasks[j].day, b.tasks[j].day);
  }
  const Dataset c = make_synthetic(SyntheticOptions{}, 8);
  bool differs = false;
  for (std::size_t j = 0; j < a.task_count() && !differs; ++j) {
    differs = a.tasks[j].ground_truth != c.tasks[j].ground_truth;
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticDatasetTest, TasksEvenlySpreadOverDays) {
  const Dataset d = make_synthetic(SyntheticOptions{}, 3);
  EXPECT_EQ(d.day_count(), 5);
  for (int day = 0; day < 5; ++day) {
    EXPECT_EQ(d.tasks_of_day(day).size(), 200u);
  }
}

TEST(SurveyDatasetTest, MatchesPaperSection611Shape) {
  const Dataset d = make_survey_like(SurveyOptions{}, 1);
  EXPECT_EQ(d.user_count(), 60u);
  EXPECT_EQ(d.task_count(), 150u);
  EXPECT_TRUE(d.has_descriptions);
  EXPECT_EQ(d.latent_domain_count, 10u);
  for (const Task& t : d.tasks) {
    EXPECT_FALSE(t.description.empty());
    EXPECT_GE(t.processing_time, 2.0);
    EXPECT_LE(t.processing_time, 4.0);
  }
}

TEST(SurveyDatasetTest, DescriptionsYieldQueryAndTargetTerms) {
  const Dataset d = make_survey_like(SurveyOptions{}, 2);
  std::size_t with_both = 0;
  for (const Task& t : d.tasks) {
    const text::PairWord p = text::extract_pair(t.description);
    if (!p.query.empty() && !p.target.empty()) ++with_both;
  }
  // Every generated template has a query and a target term.
  EXPECT_EQ(with_both, d.task_count());
}

TEST(SurveyDatasetTest, UsersHaveStrongAndWeakTopics) {
  const SurveyOptions options;
  const Dataset d = make_survey_like(options, 3);
  for (const User& u : d.users) {
    const double hi =
        *std::max_element(u.true_expertise.begin(), u.true_expertise.end());
    const double lo =
        *std::min_element(u.true_expertise.begin(), u.true_expertise.end());
    EXPECT_GE(hi, options.strong_lo);  // at least one strong topic
    EXPECT_LE(lo, options.weak_hi);    // at least one weak topic
  }
}

TEST(SfvDatasetTest, MatchesPaperSection612Shape) {
  const Dataset d = make_sfv_like(SfvOptions{}, 1);
  EXPECT_EQ(d.user_count(), 18u);  // the 18 slot-filling systems
  EXPECT_EQ(d.task_count(), 600u);
  EXPECT_TRUE(d.has_descriptions);
}

TEST(SfvDatasetTest, ScalesWithEntityCount) {
  SfvOptions options;
  options.entities = 10;
  options.properties_per_entity = 4;
  const Dataset d = make_sfv_like(options, 1);
  EXPECT_EQ(d.task_count(), 40u);
}

TEST(ObserveTest, ErrorScalesInverselyWithExpertise) {
  SyntheticOptions options;
  options.users = 2;
  options.tasks = 1;
  options.domains = 1;
  Dataset d = make_synthetic(options, 5);
  d.users[0].true_expertise[0] = 3.0;
  d.users[1].true_expertise[0] = 0.3;
  d.tasks[0].base_number = 2.0;
  Rng rng(9);
  double err_expert = 0.0;
  double err_novice = 0.0;
  constexpr int kDraws = 20000;
  for (int s = 0; s < kDraws; ++s) {
    const double a = observe(d, 0, 0, rng) - d.tasks[0].ground_truth;
    const double b = observe(d, 1, 0, rng) - d.tasks[0].ground_truth;
    err_expert += a * a;
    err_novice += b * b;
  }
  // Variances (σ/u)²: (2/3)² vs (2/0.3)²
  EXPECT_NEAR(std::sqrt(err_expert / kDraws), 2.0 / 3.0, 0.02);
  EXPECT_NEAR(std::sqrt(err_novice / kDraws), 2.0 / 0.3, 0.2);
}

TEST(ObserveTest, NormalizedErrorsAreStandardNormal) {
  // The Fig. 2 property on generated data: (x − μ)·u/σ ~ N(0, 1).
  const Dataset d = make_synthetic(SyntheticOptions{}, 11);
  Rng rng(13);
  std::vector<double> errs;
  for (std::size_t j = 0; j < 200; ++j) {
    for (std::size_t i = 0; i < 5; ++i) {
      const Task& t = d.tasks[j];
      const double u = std::max(0.05, d.users[i].true_expertise[t.true_domain]);
      const double x = observe(d, i, j, rng);
      errs.push_back((x - t.ground_truth) * u / t.base_number);
    }
  }
  EXPECT_NEAR(stats::mean(errs), 0.0, 0.05);
  EXPECT_NEAR(stats::stddev(errs), 1.0, 0.05);
  const stats::GofResult gof = stats::normality_gof_test(errs);
  ASSERT_TRUE(gof.valid);
  EXPECT_GE(gof.p_value, 0.01);
}

TEST(ObserveTest, NonNormalFractionUsesUniformWithSameMoments) {
  SyntheticOptions options;
  options.nonnormal_fraction = 1.0;  // every draw uniform
  Dataset d = make_synthetic(options, 17);
  Rng rng(19);
  const Task& t = d.tasks[0];
  const double u = std::max(0.05, d.users[0].true_expertise[t.true_domain]);
  const double stddev = t.base_number / u;
  double lo = 1e18;
  double hi = -1e18;
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int s = 0; s < kDraws; ++s) {
    const double x = observe(d, 0, 0, rng);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    sum += x;
  }
  // Uniform support is μ ± √3·σ/u.
  EXPECT_GE(lo, t.ground_truth - 1.7320508 * stddev - 1e-9);
  EXPECT_LE(hi, t.ground_truth + 1.7320508 * stddev + 1e-9);
  EXPECT_NEAR(sum / kDraws, t.ground_truth, 0.05 * stddev + 0.05);
}

TEST(ObserveTest, RejectsOutOfRange) {
  const Dataset d = make_synthetic(SyntheticOptions{}, 1);
  Rng rng(1);
  EXPECT_THROW(observe(d, 1000, 0, rng), std::invalid_argument);
  EXPECT_THROW(observe(d, 0, 100000, rng), std::invalid_argument);
}

TEST(AdversarialUsersTest, FractionAndBiasRespected) {
  SyntheticOptions options;
  options.users = 400;
  options.tasks = 10;
  options.adversarial_fraction = 0.25;
  const Dataset d = make_synthetic(options, 3);
  std::size_t adversaries = 0;
  for (const User& u : d.users) {
    if (u.adversarial) {
      ++adversaries;
      const double magnitude = std::fabs(u.bias);
      EXPECT_GE(magnitude, options.bias_lo);
      EXPECT_LE(magnitude, options.bias_hi);
    } else {
      EXPECT_DOUBLE_EQ(u.bias, 0.0);
    }
  }
  EXPECT_NEAR(static_cast<double>(adversaries) / 400.0, 0.25, 0.07);
}

TEST(AdversarialUsersTest, FabricatedReportsCarryTheBias) {
  SyntheticOptions options;
  options.users = 2;
  options.tasks = 1;
  options.domains = 1;
  Dataset d = make_synthetic(options, 5);
  d.users[0].adversarial = true;
  d.users[0].bias = 3.0;
  Rng rng(7);
  double sum = 0.0;
  constexpr int kDraws = 5000;
  for (int s = 0; s < kDraws; ++s) sum += observe(d, 0, 0, rng);
  const Task& t = d.tasks[0];
  EXPECT_NEAR(sum / kDraws, t.ground_truth + 3.0 * t.base_number,
              0.05 * t.base_number);
}

TEST(AdversarialUsersTest, Eta2DiscountsFabricators) {
  SyntheticOptions options;
  options.users = 40;
  options.tasks = 200;
  options.domains = 4;
  options.adversarial_fraction = 0.2;
  const Dataset d = make_synthetic(options, 9);
  const SimOptions sim_options;
  const auto eta2_run = simulate(d, "eta2", sim_options, 9);
  const auto mean_run = simulate(d, "baseline", sim_options, 9);
  EXPECT_LT(eta2_run.overall_error, 0.6 * mean_run.overall_error);
}

TEST(DatasetTest, CapacityFloorsAtHalfHour) {
  SyntheticOptions options;
  options.mean_capacity = 0.1;  // degenerate: would go negative
  options.capacity_spread = 4.0;
  const Dataset d = make_synthetic(options, 1);
  for (const User& u : d.users) {
    EXPECT_GE(u.capacity, 0.5);
  }
}

}  // namespace
}  // namespace eta2::sim
