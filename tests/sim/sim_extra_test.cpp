// The campaign snapshot's extra-block StepHealth serialization
// (sim/durable_sim.h): v2 round-trips every counter — including the PR 7
// shard/greedy observability fields — and a pinned v1 block still loads,
// resuming the newer counters from zero.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "io/snapshot.h"
#include "sim/durable_sim.h"

namespace eta2::sim {
namespace {

core::StepHealth sample_health() {
  core::StepHealth h;
  h.pairs_asked = 120;
  h.observations_accepted = 111;
  h.rejected_nonfinite = 3;
  h.rejected_out_of_range = 2;
  h.silent_pairs = 4;
  h.identifier_failed = true;
  h.domain_fallback_tasks = 5;
  h.truth_fallback = true;
  h.quality_unmet_tasks = 6;
  h.empty_batch = true;
  h.quarantined_batches = 1;
  h.shard_count = 4;
  h.sharded_truth_iterations = 250;
  h.greedy_selections = 48;
  h.greedy_gain_evaluations = 910;
  h.greedy_heap_pops = 333;
  return h;
}

// sample_health() plus the optional trust-defense trailer a defended
// campaign (DefenseTier != kOff) writes.
core::StepHealth defended_health() {
  core::StepHealth h = sample_health();
  h.suspected_users = 7;
  h.quarantined_users = 3;
  h.readmitted_users = 1;
  h.flagged_cliques = 2;
  h.dropped_quarantined = 14;
  h.trimmed_observations = 9;
  h.trust_histogram = {1, 0, 2, 0, 0, 0, 3, 18};
  return h;
}

void expect_equal(const core::StepHealth& a, const core::StepHealth& b) {
  EXPECT_EQ(a.pairs_asked, b.pairs_asked);
  EXPECT_EQ(a.observations_accepted, b.observations_accepted);
  EXPECT_EQ(a.rejected_nonfinite, b.rejected_nonfinite);
  EXPECT_EQ(a.rejected_out_of_range, b.rejected_out_of_range);
  EXPECT_EQ(a.silent_pairs, b.silent_pairs);
  EXPECT_EQ(a.identifier_failed, b.identifier_failed);
  EXPECT_EQ(a.domain_fallback_tasks, b.domain_fallback_tasks);
  EXPECT_EQ(a.truth_fallback, b.truth_fallback);
  EXPECT_EQ(a.quality_unmet_tasks, b.quality_unmet_tasks);
  EXPECT_EQ(a.empty_batch, b.empty_batch);
  EXPECT_EQ(a.quarantined_batches, b.quarantined_batches);
  EXPECT_EQ(a.shard_count, b.shard_count);
  EXPECT_EQ(a.sharded_truth_iterations, b.sharded_truth_iterations);
  EXPECT_EQ(a.greedy_selections, b.greedy_selections);
  EXPECT_EQ(a.greedy_gain_evaluations, b.greedy_gain_evaluations);
  EXPECT_EQ(a.greedy_heap_pops, b.greedy_heap_pops);
  EXPECT_EQ(a.suspected_users, b.suspected_users);
  EXPECT_EQ(a.quarantined_users, b.quarantined_users);
  EXPECT_EQ(a.readmitted_users, b.readmitted_users);
  EXPECT_EQ(a.flagged_cliques, b.flagged_cliques);
  EXPECT_EQ(a.dropped_quarantined, b.dropped_quarantined);
  EXPECT_EQ(a.trimmed_observations, b.trimmed_observations);
  EXPECT_EQ(a.trust_histogram, b.trust_histogram);
}

TEST(SimExtraTest, StepHealthV2RoundTripsEveryCounter) {
  const core::StepHealth h = sample_health();
  std::ostringstream out;
  write_step_health(out, h);
  std::istringstream in(out.str());
  expect_equal(read_step_health(in, kSimExtraVersion), h);
}

TEST(SimExtraTest, StepHealthSerializationIsStableAcrossRoundTrips) {
  // Byte-stable: serialize(read(serialize(h))) == serialize(h) — the extra
  // block participates in snapshot digests, so drift here breaks resume.
  const core::StepHealth h = sample_health();
  std::ostringstream first;
  write_step_health(first, h);
  std::istringstream in(first.str());
  const core::StepHealth reread = read_step_health(in, kSimExtraVersion);
  std::ostringstream second;
  write_step_health(second, reread);
  EXPECT_EQ(second.str(), first.str());
}

TEST(SimExtraTest, PinnedV1BlockLoadsWithZeroShardGreedyCounters) {
  // The exact byte layout a pre-v2 campaign wrote: the eleven fault
  // counters only. Pinned as a literal so accidental format drift fails
  // here, not in a user's resumed campaign.
  std::istringstream in("120 111 3 2 4 1 5 1 6 1 1");
  const core::StepHealth h = read_step_health(in, 1);
  core::StepHealth expected = sample_health();
  expected.shard_count = 0;
  expected.sharded_truth_iterations = 0;
  expected.greedy_selections = 0;
  expected.greedy_gain_evaluations = 0;
  expected.greedy_heap_pops = 0;
  expect_equal(h, expected);
}

TEST(SimExtraTest, V1ParserStopsBeforeTrailingData) {
  // A v1 reader must not consume v2's extra fields from the stream: the
  // surrounding accumulator parser relies on the next token staying put.
  std::istringstream in("120 111 3 2 4 1 5 1 6 1 1 next-key");
  (void)read_step_health(in, 1);
  std::string next;
  ASSERT_TRUE(static_cast<bool>(in >> next));
  EXPECT_EQ(next, "next-key");
}

TEST(SimExtraTest, DefenseFreeHealthWritesNoTrustTrailer) {
  // The kOff byte-identity contract: a health block with all trust
  // counters at zero must serialize to EXACTLY the pre-trust v2 bytes —
  // the extra block feeds snapshot digests, so a defense-free campaign's
  // checkpoints cannot change when the trust code ships.
  std::ostringstream out;
  write_step_health(out, sample_health());
  EXPECT_EQ(out.str(), "120 111 3 2 4 1 5 1 6 1 1 4 250 48 910 333");
}

TEST(SimExtraTest, DefendedHealthRoundTripsTrustTrailer) {
  const core::StepHealth h = defended_health();
  std::ostringstream out;
  write_step_health(out, h);
  EXPECT_NE(out.str().find(" T "), std::string::npos);
  std::istringstream in(out.str());
  expect_equal(read_step_health(in, kSimExtraVersion), h);
  // Byte-stable, same as the defense-free block.
  std::istringstream again(out.str());
  const core::StepHealth reread = read_step_health(again, kSimExtraVersion);
  std::ostringstream second;
  write_step_health(second, reread);
  EXPECT_EQ(second.str(), out.str());
}

TEST(SimExtraTest, V2ParserWithoutTrailerStopsBeforeTrailingData) {
  // The trust trailer is detected by peeking for 'T'; a trailer-free block
  // followed by another accumulator key must leave that key unread.
  std::istringstream in(
      "120 111 3 2 4 1 5 1 6 1 1 4 250 48 910 333 next-key");
  (void)read_step_health(in, kSimExtraVersion);
  std::string next;
  ASSERT_TRUE(static_cast<bool>(in >> next));
  EXPECT_EQ(next, "next-key");
}

TEST(SimExtraTest, TruncatedHealthBlockThrows) {
  std::istringstream v2_short("120 111 3 2 4 1 5 1 6 1 1 4 250");
  EXPECT_THROW((void)read_step_health(v2_short, 2),
               io::CorruptSnapshotError);
  std::istringstream v1_short("120 111 3");
  EXPECT_THROW((void)read_step_health(v1_short, 1),
               io::CorruptSnapshotError);
  std::istringstream trust_short(
      "120 111 3 2 4 1 5 1 6 1 1 4 250 48 910 333 T 7 3 1");
  EXPECT_THROW((void)read_step_health(trust_short, 2),
               io::CorruptSnapshotError);
}

}  // namespace
}  // namespace eta2::sim
