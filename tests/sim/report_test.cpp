#include "sim/report.h"

#include <gtest/gtest.h>

#include "sim/dataset.h"

namespace eta2::sim {
namespace {

SimulationResult sample_run() {
  SyntheticOptions options;
  options.users = 25;
  options.tasks = 60;
  options.domains = 3;
  const Dataset d = make_synthetic(options, 5);
  return simulate(d, "eta2", SimOptions{}, 5);
}

TEST(ReportTest, ContainsHeadlineAndDays) {
  const SimulationResult run = sample_run();
  const ReportContext context{"synthetic", "ETA2", 5};
  const std::string report = markdown_report(run, context);
  EXPECT_NE(report.find("# Campaign report — ETA2 on synthetic (seed 5)"),
            std::string::npos);
  EXPECT_NE(report.find("overall normalized estimation error"),
            std::string::npos);
  EXPECT_NE(report.find("## Per-day metrics"), std::string::npos);
  EXPECT_NE(report.find("| day "), std::string::npos);
  // One row per day.
  for (const DayMetrics& day : run.days) {
    EXPECT_NE(report.find("| " + std::to_string(day.day) + " "),
              std::string::npos);
  }
  EXPECT_NE(report.find("## Trend"), std::string::npos);
  EXPECT_NE(report.find("## Allocation redundancy"), std::string::npos);
}

TEST(ReportTest, ExpertiseLineOnlyWhenAvailable) {
  const SimulationResult run = sample_run();
  const std::string with = markdown_report(run, {"synthetic", "ETA2", 1});
  EXPECT_NE(with.find("expertise MAE"), std::string::npos);

  SimulationResult no_mae = run;
  no_mae.expertise_mae = std::numeric_limits<double>::quiet_NaN();
  const std::string without = markdown_report(no_mae, {"synthetic", "mean", 1});
  EXPECT_EQ(without.find("expertise MAE"), std::string::npos);
}

TEST(ReportTest, EmptyRunStillRenders) {
  const SimulationResult empty;
  const std::string report = markdown_report(empty, {"none", "ETA2", 0});
  EXPECT_NE(report.find("# Campaign report"), std::string::npos);
}

}  // namespace
}  // namespace eta2::sim
