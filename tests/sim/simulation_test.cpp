#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/dataset.h"
#include "sim/experiment.h"

namespace eta2::sim {
namespace {

SyntheticOptions small_synthetic() {
  SyntheticOptions options;
  options.users = 40;
  options.tasks = 150;
  options.domains = 4;
  return options;
}

TEST(MethodNameTest, AllNamesDistinct) {
  EXPECT_EQ(method_name("eta2"), "ETA2");
  EXPECT_EQ(method_name("eta2-mc"), "ETA2-mc");
  EXPECT_EQ(method_name("baseline"), "Baseline");
  EXPECT_TRUE(is_eta2("eta2"));
  EXPECT_TRUE(is_eta2("eta2-mc"));
  EXPECT_FALSE(is_eta2("truthfinder"));
}

TEST(EstimationErrorTest, NormalizesByBaseNumber) {
  Dataset d = make_synthetic(small_synthetic(), 1);
  d.tasks[0].ground_truth = 10.0;
  d.tasks[0].base_number = 2.0;
  d.tasks[1].ground_truth = 4.0;
  d.tasks[1].base_number = 1.0;
  const std::vector<std::size_t> ids{0, 1};
  const std::vector<double> estimates{11.0, 4.5};
  // (|11−10|/2 + |4.5−4|/1) / 2 = 0.5
  EXPECT_DOUBLE_EQ(estimation_error(d, ids, estimates), 0.5);
}

TEST(EstimationErrorTest, SkipsNaNs) {
  const Dataset d = make_synthetic(small_synthetic(), 1);
  const std::vector<std::size_t> ids{0, 1};
  const std::vector<double> estimates{d.tasks[0].ground_truth,
                                      std::nan("")};
  std::size_t skipped = 0;
  EXPECT_DOUBLE_EQ(estimation_error(d, ids, estimates, &skipped), 0.0);
  EXPECT_EQ(skipped, 1u);
}

TEST(SimulateTest, Eta2RunsAllDaysAndImproves) {
  const Dataset d = make_synthetic(small_synthetic(), 5);
  const SimOptions options;
  const SimulationResult r = simulate(d, "eta2", options, 5);
  ASSERT_EQ(r.days.size(), 5u);
  EXPECT_TRUE(r.days.front().day == 0);
  // Later days must be better than the random warm-up day on average.
  const double late =
      (r.days[3].estimation_error + r.days[4].estimation_error) / 2.0;
  EXPECT_LT(late, r.days[0].estimation_error);
  EXPECT_FALSE(std::isnan(r.expertise_mae));
  EXPECT_GT(r.total_cost, 0.0);
}

TEST(SimulateTest, ShardObservabilitySurfacesOnResultHealth) {
  // The sharded step pipeline is on by default: the aggregated health
  // ledger must carry the shard plan size, per-shard stage timings, and
  // the max-quality greedy's work counters (DESIGN.md §12).
  const Dataset d = make_synthetic(small_synthetic(), 5);
  const SimOptions options;
  const SimulationResult r = simulate(d, "eta2", options, 5);
  EXPECT_GT(r.health.shard_count, 0u);
  EXPECT_GT(r.health.sharded_truth_iterations, 0u);
  EXPECT_FALSE(r.health.shard_truth_ns.empty());
  EXPECT_FALSE(r.health.shard_alloc_ns.empty());
  EXPECT_GT(r.health.greedy_selections, 0u);
  EXPECT_GT(r.health.greedy_gain_evaluations, 0u);
  // Timings are observability only — they must never flip a run degraded.
  EXPECT_FALSE(r.health.degraded());
}

TEST(SimulateTest, Eta2BeatsMeanBaseline) {
  const Dataset d = make_synthetic(small_synthetic(), 7);
  const SimOptions options;
  const auto eta2 = simulate(d, "eta2", options, 7);
  const auto baseline = simulate(d, "baseline", options, 7);
  EXPECT_LT(eta2.overall_error, baseline.overall_error);
}

TEST(SimulateTest, DeterministicPerSeed) {
  const Dataset d = make_synthetic(small_synthetic(), 9);
  const SimOptions options;
  const auto a = simulate(d, "eta2", options, 42);
  const auto b = simulate(d, "eta2", options, 42);
  EXPECT_DOUBLE_EQ(a.overall_error, b.overall_error);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  const auto c = simulate(d, "eta2", options, 43);
  EXPECT_NE(a.overall_error, c.overall_error);
}

TEST(SimulateTest, BaselineMethodsProduceFiniteErrors) {
  const Dataset d = make_synthetic(small_synthetic(), 11);
  const SimOptions options;
  for (const std::string_view m : {"hubs", "avglog",
                         "truthfinder", "baseline"}) {
    const auto r = simulate(d, m, options, 11);
    EXPECT_FALSE(std::isnan(r.overall_error)) << method_name(m);
    ASSERT_EQ(r.days.size(), 5u) << method_name(m);
    // Baselines do not report expertise estimates.
    EXPECT_TRUE(std::isnan(r.expertise_mae)) << method_name(m);
  }
}

TEST(SimulateTest, MinCostSpendsLessThanMaxQuality) {
  SyntheticOptions options = small_synthetic();
  options.users = 60;  // enough capacity that max-quality over-allocates
  const Dataset d = make_synthetic(options, 13);
  SimOptions sim_options;
  sim_options.config.epsilon_bar = 0.8;
  const auto mq = simulate(d, "eta2", sim_options, 13);
  const auto mc = simulate(d, "eta2-mc", sim_options, 13);
  EXPECT_LT(mc.total_cost, mq.total_cost);
  // Quality requirement still met on average.
  EXPECT_LT(mc.overall_error, sim_options.config.epsilon_bar);
}

TEST(SimulateTest, TruthIterationLogPopulated) {
  const Dataset d = make_synthetic(small_synthetic(), 15);
  const SimOptions options;
  const auto r = simulate(d, "eta2", options, 15);
  EXPECT_EQ(r.truth_iteration_log.size(), 5u);
  for (const int iters : r.truth_iteration_log) {
    EXPECT_GE(iters, 1);
  }
}

TEST(SimulateTest, AssignmentStatsShapes) {
  const Dataset d = make_synthetic(small_synthetic(), 17);
  const SimOptions options;
  const auto r = simulate(d, "eta2", options, 17);
  for (const DayMetrics& day : r.days) {
    EXPECT_EQ(day.users_per_task.size(), day.task_count);
    EXPECT_EQ(day.mean_assigned_expertise.size(), day.task_count);
    std::size_t pair_sum = 0;
    for (const std::size_t u : day.users_per_task) pair_sum += u;
    EXPECT_EQ(pair_sum, day.pair_count);
  }
}

TEST(SimulateTest, SurveyDatasetRequiresEmbedder) {
  const Dataset d = make_survey_like(SurveyOptions{}, 1);
  const SimOptions no_embedder;
  EXPECT_THROW(simulate(d, "eta2", no_embedder, 1),
               std::invalid_argument);
}

TEST(SimulateTest, SurveyDatasetRunsWithEmbedder) {
  SurveyOptions survey;
  survey.tasks = 60;
  const Dataset d = make_survey_like(survey, 3);
  SimOptions options;
  options.embedder = std::make_shared<text::HashEmbedder>(16);
  const auto r = simulate(d, "eta2", options, 3);
  EXPECT_FALSE(std::isnan(r.overall_error));
  // Expertise MAE is only defined for pre-known-domain datasets.
  EXPECT_TRUE(std::isnan(r.expertise_mae));
}

TEST(SimulateTest, SurvivesLowResponseRates) {
  const Dataset d = make_synthetic(small_synthetic(), 19);
  SimOptions options;
  options.fault.response_rate = 0.4;
  for (const std::string_view m : {"eta2", "eta2-mc",
                         "truthfinder", "baseline"}) {
    const auto r = simulate(d, m, options, 19);
    EXPECT_FALSE(std::isnan(r.overall_error)) << method_name(m);
  }
}

TEST(SimulateTest, DropoutWorsensErrorMonotonically) {
  const Dataset d = make_synthetic(small_synthetic(), 23);
  SimOptions full;
  SimOptions half;
  half.fault.response_rate = 0.5;
  const auto with_full = simulate(d, "eta2", full, 23);
  const auto with_half = simulate(d, "eta2", half, 23);
  EXPECT_GT(with_half.overall_error, with_full.overall_error * 0.9);
}

TEST(SweepSeedsTest, AggregatesAcrossSeeds) {
  const SimOptions options;
  const SweepResult sweep = sweep_seeds(
      [](std::uint64_t seed) {
        SyntheticOptions o;
        o.users = 30;
        o.tasks = 80;
        o.domains = 3;
        return make_synthetic(o, seed);
      },
      "eta2", options, /*seeds=*/3);
  EXPECT_EQ(sweep.runs.size(), 3u);
  EXPECT_EQ(sweep.overall_error.n, 3u);
  EXPECT_GT(sweep.overall_error.mean, 0.0);
  EXPECT_GT(sweep.overall_error.stderr_, 0.0);
  EXPECT_EQ(sweep.per_day_error.size(), 5u);
  EXPECT_FALSE(sweep.truth_iteration_log.empty());
}

TEST(SweepSeedsTest, RejectsBadArguments) {
  const SimOptions options;
  EXPECT_THROW(sweep_seeds(nullptr, "eta2", options, 3),
               std::invalid_argument);
  EXPECT_THROW(sweep_seeds([](std::uint64_t) { return Dataset{}; },
                           "eta2", options, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace eta2::sim
