// Mutation tests for the ISSUE 9 acceptance gate: re-introducing any of the
// three concurrency bugs PR 8 actually shipped-and-fixed must make
// eta2_lint fail. Each test loads the REAL repo sources (the same file set
// the self-hosting `eta2_lint_clean` gate lints), applies one surgical
// textual mutation in memory, and asserts the matching rule fires in the
// mutated file. The baseline test pins the other side: unmutated, the repo
// is clean, so each failure is attributable to the mutation alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.h"

namespace eta2::lint {
namespace {

#ifndef ETA2_REPO_DIR
#error "ETA2_REPO_DIR must point at the repository root"
#endif

class LintMutationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Loading + linting the whole tree is the expensive part; do it once.
    repo_files_ = new std::vector<SourceFile>(load_tree(ETA2_REPO_DIR));
  }
  static void TearDownTestSuite() {
    delete repo_files_;
    repo_files_ = nullptr;
  }

  static SourceFile& file(std::vector<SourceFile>& files,
                          const std::string& path) {
    const auto it =
        std::find_if(files.begin(), files.end(),
                     [&](const SourceFile& f) { return f.path == path; });
    EXPECT_NE(it, files.end()) << "repo file missing: " << path;
    return *it;
  }

  // Replaces every occurrence of `from` in `path`; fails the test when the
  // pattern is absent (the mutation would silently test nothing).
  static std::vector<SourceFile> mutated(const std::string& path,
                                         const std::string& from,
                                         const std::string& to) {
    std::vector<SourceFile> files = *repo_files_;
    std::string& text = file(files, path).contents;
    std::size_t pos = 0;
    std::size_t hits = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
      text.replace(pos, from.size(), to);
      pos += to.size();
      ++hits;
    }
    EXPECT_GT(hits, 0u) << "mutation pattern not found in " << path << ": "
                        << from;
    return files;
  }

  // Deletes the whole line containing `needle` (keeps the newline so line
  // numbers of later diagnostics stay meaningful).
  static std::vector<SourceFile> without_line(const std::string& path,
                                              const std::string& needle) {
    std::vector<SourceFile> files = *repo_files_;
    std::string& text = file(files, path).contents;
    const std::size_t at = text.find(needle);
    EXPECT_NE(at, std::string::npos)
        << "line to delete not found in " << path << ": " << needle;
    if (at == std::string::npos) return files;
    const std::size_t begin = text.rfind('\n', at) + 1;
    const std::size_t end = text.find('\n', at);
    text.erase(begin, end - begin);
    return files;
  }

  static bool fires(const std::vector<Diagnostic>& diagnostics,
                    const std::string& path, const std::string& rule) {
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [&](const Diagnostic& d) {
                         return d.file == path && d.rule == rule;
                       });
  }

  static std::string joined(const std::vector<Diagnostic>& diagnostics) {
    std::ostringstream out;
    for (const Diagnostic& d : diagnostics) {
      out << format_diagnostic(d) << "\n";
    }
    return out.str();
  }

  static std::vector<SourceFile>* repo_files_;
};

std::vector<SourceFile>* LintMutationTest::repo_files_ = nullptr;

TEST_F(LintMutationTest, UnmutatedRepoIsClean) {
  const auto diagnostics = lint_files(*repo_files_);
  EXPECT_TRUE(diagnostics.empty()) << joined(diagnostics);
}

// PR 8 bug 1: serve_connection's catch-all backstop was missing, so a
// non-std exception from a hostile frame tore down the whole daemon via
// std::terminate. Narrowing any thread-boundary catch (...) back to a typed
// catch must trip thread-exception-escape on the ETA2_THREAD_ENTRY
// functions in socket.cpp.
TEST_F(LintMutationTest, RemovingCatchAllBackstopTripsThreadExceptionEscape) {
  const auto diagnostics =
      lint_files(mutated("src/serve/socket.cpp", "catch (...)",
                         "catch (const std::exception&)"));
  EXPECT_TRUE(
      fires(diagnostics, "src/serve/socket.cpp", "thread-exception-escape"))
      << joined(diagnostics);
}

// PR 8 bug 2: listen_fd_ was a plain int written by stop() while the accept
// thread read it — a data race. Downgrading the atomic back to a plain int
// must trip the shared-state arm of guarded-by (annotation merge makes the
// header's member visible while linting socket.cpp).
TEST_F(LintMutationTest, NonAtomicListenFdTripsGuardedBy) {
  const auto diagnostics = lint_files(mutated(
      "src/serve/socket.h", "std::atomic<int> listen_fd_{-1};",
      "int listen_fd_ = -1;"));
  EXPECT_TRUE(fires(diagnostics, "src/serve/socket.cpp", "guarded-by"))
      << joined(diagnostics);
}

// PR 8 bug 3: parse_batch resized from a client-supplied count before
// validating it, so a one-line header could demand a multi-GiB allocation.
// Deleting the task-count bound check must trip unbounded-input-resize.
TEST_F(LintMutationTest, DroppingTaskCountBoundTripsUnboundedInputResize) {
  const auto diagnostics = lint_files(
      without_line("src/serve/batch.cpp", "check_count(task_count"));
  EXPECT_TRUE(
      fires(diagnostics, "src/serve/batch.cpp", "unbounded-input-resize"))
      << joined(diagnostics);
}

}  // namespace
}  // namespace eta2::lint
