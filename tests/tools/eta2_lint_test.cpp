// eta2_lint rule tests: every rule fires on a minimal fixture, suppression
// comments silence exactly the named rule, and a clean tree lints empty.
#include "lint/linter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace eta2::lint {
namespace {

std::vector<std::string> rules_hit(const std::vector<Diagnostic>& diagnostics) {
  std::vector<std::string> rules;
  for (const Diagnostic& d : diagnostics) rules.push_back(d.rule);
  return rules;
}

bool has_rule(const std::vector<Diagnostic>& diagnostics,
              std::string_view rule) {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [&](const Diagnostic& d) { return d.rule == rule; });
}

SourceFile library_file(std::string contents) {
  return SourceFile{"src/demo/widget.cpp", std::move(contents), false};
}

// --- scrubber -------------------------------------------------------------

TEST(ScrubTest, RemovesCommentsAndStringsPreservingLines) {
  const std::string source =
      "int a; // rand() in a comment\n"
      "const char* s = \"std::cout inside a string\";\n"
      "/* block\n   rand() */ int b;\n";
  const std::string scrubbed = scrub_source(source);
  EXPECT_EQ(std::count(scrubbed.begin(), scrubbed.end(), '\n'),
            std::count(source.begin(), source.end(), '\n'));
  EXPECT_EQ(scrubbed.find("rand"), std::string::npos);
  EXPECT_EQ(scrubbed.find("cout"), std::string::npos);
  EXPECT_NE(scrubbed.find("int a;"), std::string::npos);
  EXPECT_NE(scrubbed.find("int b;"), std::string::npos);
}

TEST(ScrubTest, HandlesRawStringsAndEscapes) {
  const std::string source =
      "auto r = R\"(rand() time(nullptr))\";\n"
      "char c = '\\\"'; int x = 1;\n";
  const std::string scrubbed = scrub_source(source);
  EXPECT_EQ(scrubbed.find("rand"), std::string::npos);
  EXPECT_NE(scrubbed.find("int x = 1;"), std::string::npos);
}

// --- nondeterminism -------------------------------------------------------

TEST(LintRuleTest, NondeterminismFlagsRandFamily) {
  const auto diagnostics = lint_file(library_file(
      "int f() { return rand(); }\n"
      "void g() { srand(7); }\n"
      "std::random_device rd;\n"
      "auto t = time(nullptr);\n"
      "auto n = std::chrono::steady_clock::now();\n"));
  EXPECT_EQ(diagnostics.size(), 5u);
  for (const auto& d : diagnostics) EXPECT_EQ(d.rule, "nondeterminism");
  EXPECT_EQ(diagnostics[0].line, 1u);
  EXPECT_EQ(diagnostics[3].line, 4u);
}

TEST(LintRuleTest, NondeterminismAllowedInRngAndBench) {
  const std::string contents = "std::random_device rd;\n";
  EXPECT_TRUE(
      lint_file({"src/common/rng.cpp", contents, false}).empty());
  EXPECT_TRUE(lint_file({"bench/fig99_timing.cpp", contents, false}).empty());
  EXPECT_FALSE(lint_file({"src/truth/foo.cpp", contents, false}).empty());
}

TEST(LintRuleTest, NondeterminismIgnoresLookalikes) {
  const auto diagnostics = lint_file(library_file(
      "int random_seed = brand();\n"  // brand() is not rand()
      "double lifetime = time_budget(x);\n"));
  EXPECT_TRUE(diagnostics.empty()) << format_diagnostic(diagnostics.front());
}

// --- unordered-iteration --------------------------------------------------

TEST(LintRuleTest, UnorderedIterationFlagsRangeFor) {
  const auto diagnostics = lint_file(library_file(
      "std::unordered_map<std::string, int> counts;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : counts) { use(k, v); }\n"
      "}\n"));
  ASSERT_EQ(rules_hit(diagnostics),
            std::vector<std::string>{"unordered-iteration"});
  EXPECT_EQ(diagnostics[0].line, 3u);
}

TEST(LintRuleTest, UnorderedIterationFlagsIteratorLoops) {
  const auto diagnostics = lint_file(library_file(
      "std::unordered_set<int> seen;\n"
      "void f() {\n"
      "  for (auto it = seen.begin(); it != seen.end(); ++it) use(*it);\n"
      "}\n"));
  EXPECT_TRUE(has_rule(diagnostics, "unordered-iteration"));
}

TEST(LintRuleTest, UnorderedLookupIsNotIteration) {
  const auto diagnostics = lint_file(library_file(
      "std::unordered_map<std::string, int> counts;\n"
      "int f(const std::string& k) { return counts.at(k); }\n"
      "bool g(const std::string& k) { return counts.count(k) > 0; }\n"));
  EXPECT_TRUE(diagnostics.empty()) << format_diagnostic(diagnostics.front());
}

TEST(LintRuleTest, SingleLineLoopBodyMentionIsNotIteration) {
  // Regression: the range expression ends at the for's close paren; a
  // container mutated in the loop BODY of a one-line for over an ordered
  // sequence must not be flagged (src/text/vocab.cpp pattern).
  const auto diagnostics = lint_file(library_file(
      "std::unordered_map<std::string, int> counts;\n"
      "void f(const std::vector<std::string>& v) {\n"
      "  for (const auto& t : v) ++counts[t];\n"
      "}\n"));
  EXPECT_TRUE(diagnostics.empty()) << format_diagnostic(diagnostics.front());
}

// --- library-output -------------------------------------------------------

TEST(LintRuleTest, LibraryOutputFlagsCoutAndPrintfInSrcOnly) {
  const std::string contents =
      "void report() { std::cout << 1; }\n"
      "void report2() { printf(\"%d\", 2); }\n";
  const auto in_src = lint_file(library_file(contents));
  EXPECT_EQ(rules_hit(in_src),
            (std::vector<std::string>{"library-output", "library-output"}));
  EXPECT_TRUE(lint_file({"tools/eta2_cli.cpp", contents, false}).empty());
  EXPECT_TRUE(lint_file({"examples/quickstart.cpp", contents, false}).empty());
}

// --- catch-all ------------------------------------------------------------

TEST(LintRuleTest, CatchAllFlagged) {
  const auto diagnostics = lint_file(library_file(
      "void f() {\n"
      "  try { g(); } catch (...) { }\n"
      "}\n"));
  ASSERT_EQ(rules_hit(diagnostics), std::vector<std::string>{"catch-all"});
  EXPECT_EQ(diagnostics[0].line, 2u);
}

TEST(LintRuleTest, TypedCatchIsFine) {
  const auto diagnostics = lint_file(library_file(
      "void f() {\n"
      "  try { g(); } catch (const std::exception& e) { log(e); }\n"
      "}\n"));
  EXPECT_TRUE(diagnostics.empty());
}

// --- float-equality -------------------------------------------------------

TEST(LintRuleTest, FloatEqualityFlagsLiteralCompares) {
  EXPECT_TRUE(has_rule(lint_file(library_file("bool b = x == 0.0;\n")),
                       "float-equality"));
  EXPECT_TRUE(has_rule(lint_file(library_file("bool b = 1.5 != y;\n")),
                       "float-equality"));
  EXPECT_TRUE(has_rule(lint_file(library_file("if (z == 1e-9) {}\n")),
                       "float-equality"));
}

TEST(LintRuleTest, FloatEqualityIgnoresOrderedComparesAndInts) {
  EXPECT_TRUE(lint_file(library_file("bool b = x <= 0.0;\n")).empty());
  EXPECT_TRUE(lint_file(library_file("bool b = x >= 1.5;\n")).empty());
  EXPECT_TRUE(lint_file(library_file("bool b = n == 2;\n")).empty());
  EXPECT_TRUE(lint_file(library_file("bool b = version != 3;\n")).empty());
}

// --- include hygiene ------------------------------------------------------

TEST(LintRuleTest, MissingIncludeGuardFlagged) {
  const auto diagnostics =
      lint_file({"src/demo/widget.h", "struct Widget {};\n", false});
  ASSERT_EQ(rules_hit(diagnostics),
            std::vector<std::string>{"missing-include-guard"});
  EXPECT_EQ(diagnostics[0].line, 0u);
}

TEST(LintRuleTest, GuardOrPragmaOnceAccepted) {
  EXPECT_TRUE(lint_file({"src/demo/widget.h",
                         "#ifndef DEMO_WIDGET_H\n#define DEMO_WIDGET_H\n"
                         "struct Widget {};\n#endif\n",
                         false})
                  .empty());
  EXPECT_TRUE(lint_file({"src/demo/widget.h",
                         "#pragma once\nstruct Widget {};\n", false})
                  .empty());
}

TEST(LintRuleTest, SelfIncludeFirstEnforced) {
  const auto wrong_first = lint_file(
      {"src/demo/widget.cpp",
       "#include <vector>\n#include \"demo/widget.h\"\n", true});
  ASSERT_EQ(rules_hit(wrong_first),
            std::vector<std::string>{"self-include-first"});
  EXPECT_EQ(wrong_first[0].line, 1u);

  EXPECT_TRUE(lint_file({"src/demo/widget.cpp",
                         "#include \"demo/widget.h\"\n#include <vector>\n",
                         true})
                  .empty());
  // Top-level file with no directory prefix in the include.
  EXPECT_TRUE(lint_file({"bench/bench_util.cpp",
                         "#include \"bench_util.h\"\n", true})
                  .empty());
  // Never includes its own header at all.
  EXPECT_TRUE(has_rule(
      lint_file({"src/demo/widget.cpp", "#include <vector>\n", true}),
      "self-include-first"));
  // No sibling header: no requirement.
  EXPECT_TRUE(
      lint_file({"src/demo/widget.cpp", "#include <vector>\n", false})
          .empty());
}

// --- hot-loop-require -----------------------------------------------------

TEST(LintRuleTest, HotLoopRequireFlagsThrowingValidationInParallelBody) {
  const auto diagnostics = lint_file(library_file(
      "void f() {\n"
      "  parallel::parallel_for(n, 16, [&](std::size_t i) {\n"
      "    require(i < limit, \"out of range\");\n"
      "  });\n"
      "}\n"));
  ASSERT_EQ(rules_hit(diagnostics),
            std::vector<std::string>{"hot-loop-require"});
  EXPECT_EQ(diagnostics[0].line, 3u);
}

TEST(LintRuleTest, HotLoopRequireCoversAllEntryPointsAndThrowForms) {
  EXPECT_TRUE(has_rule(
      lint_file(library_file(
          "void f() {\n"
          "  parallel::parallel_for_chunks(n, 64, [&](std::size_t b,\n"
          "                                           std::size_t e) {\n"
          "    ensure(b < e, \"empty chunk\");\n"
          "  });\n"
          "}\n")),
      "hot-loop-require"));
  EXPECT_TRUE(has_rule(
      lint_file(library_file(
          "double g() {\n"
          "  return parallel::parallel_reduce(\n"
          "      n, 128, 0.0,\n"
          "      [&](std::size_t b, std::size_t e) {\n"
          "        if (b == e) throw std::logic_error(\"bad\");\n"
          "        return f(b, e);\n"
          "      },\n"
          "      [](double a, double b) { return a + b; });\n"
          "}\n")),
      "hot-loop-require"));
}

TEST(LintRuleTest, HotLoopRequireIgnoresContractMacrosAndHoistedChecks) {
  // ETA2_* contract macros are the sanctioned in-loop mechanism, and
  // validation before/after the region is exactly what the rule demands.
  EXPECT_TRUE(lint_file(library_file(
                  "void f() {\n"
                  "  require(n > 0, \"empty\");\n"
                  "  parallel::parallel_for(n, 16, [&](std::size_t i) {\n"
                  "    ETA2_ASSERT(p[i] >= 0.0);\n"
                  "    ETA2_EXPECTS(i < n);\n"
                  "  });\n"
                  "  ensure(done, \"post\");\n"
                  "}\n"))
                  .empty());
}

TEST(LintRuleTest, HotLoopRequireExemptsParallelRuntimeSources) {
  const std::string contents =
      "void f() {\n"
      "  parallel_for(n, 1, [&](std::size_t i) {\n"
      "    require(ok(i), \"bad\");\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_file({"src/common/parallel.cpp", contents, false}).empty());
  EXPECT_FALSE(lint_file({"src/truth/foo.cpp", contents, false}).empty());
}

TEST(LintSuppressionTest, HotLoopRequireSuppressible) {
  EXPECT_TRUE(lint_file(library_file(
                  "void f() {\n"
                  "  parallel::parallel_for(n, 16, [&](std::size_t i) {\n"
                  "    // eta2-lint: allow(hot-loop-require) — cold setup\n"
                  "    require(i < limit, \"out of range\");\n"
                  "  });\n"
                  "}\n"))
                  .empty());
}

// --- suppressions ---------------------------------------------------------

TEST(LintSuppressionTest, SameLineAndPrecedingCommentBlock) {
  EXPECT_TRUE(lint_file(library_file(
                  "bool b = x == 0.0;  // eta2-lint: allow(float-equality)\n"))
                  .empty());
  EXPECT_TRUE(lint_file(library_file(
                  "// eta2-lint: allow(float-equality) — exact sentinel\n"
                  "bool b = x == 0.0;\n"))
                  .empty());
  // Multi-line justification: allow() sits at the top of the comment block.
  EXPECT_TRUE(lint_file(library_file(
                  "// eta2-lint: allow(catch-all) — trampoline captures\n"
                  "// and rethrows on the posting thread.\n"
                  "void f() { try { g(); } catch (...) { } }\n"))
                  .empty());
}

TEST(LintSuppressionTest, WrongRuleNameDoesNotSuppress) {
  const auto diagnostics = lint_file(library_file(
      "// eta2-lint: allow(nondeterminism)\n"
      "bool b = x == 0.0;\n"));
  EXPECT_TRUE(has_rule(diagnostics, "float-equality"));
}

TEST(LintSuppressionTest, SuppressionOnlyCoversAdjacentLine) {
  const auto diagnostics = lint_file(library_file(
      "// eta2-lint: allow(float-equality)\n"
      "int unrelated = 0;\n"
      "bool b = x == 0.0;\n"));
  EXPECT_TRUE(has_rule(diagnostics, "float-equality"));
}

// --- whole-tree runs ------------------------------------------------------

class LintTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("eta2_lint_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(root_ / "src/demo");
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void write(const std::string& relative, const std::string& contents) {
    const auto path = root_ / relative;
    std::filesystem::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary);
    out << contents;
  }

  std::filesystem::path root_;
};

TEST_F(LintTreeTest, CleanTreeReturnsNoDiagnostics) {
  write("src/demo/widget.h",
        "#ifndef DEMO_WIDGET_H\n#define DEMO_WIDGET_H\n"
        "struct Widget { int x = 0; };\n#endif\n");
  write("src/demo/widget.cpp",
        "#include \"demo/widget.h\"\nint use(Widget w) { return w.x; }\n");
  EXPECT_TRUE(lint_tree(root_.string()).empty());
}

TEST_F(LintTreeTest, ViolationsCarryRepoRelativePaths) {
  write("src/demo/widget.cpp", "int f() { return rand(); }\n");
  const auto diagnostics = lint_tree(root_.string());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].file, "src/demo/widget.cpp");
  EXPECT_EQ(diagnostics[0].rule, "nondeterminism");
  EXPECT_EQ(format_diagnostic(diagnostics[0]).find("src/demo/widget.cpp:1:"),
            0u);
}

TEST_F(LintTreeTest, TestsDirectoryIsNotScanned) {
  write("tests/demo_test.cpp", "int f() { return rand(); }\n");
  EXPECT_TRUE(lint_tree(root_.string()).empty());
}

// --- shard-shared-mutation ------------------------------------------------

TEST(LintRuleTest, ShardSharedMutationFlagsContextWritesInShardBody) {
  const auto diagnostics = lint_file(library_file(
      "void f(StepContext& ctx) {\n"
      "  truth::for_each_shard(shards, [&](std::size_t s) {\n"
      "    ctx.mle_iterations = 3;\n"
      "  });\n"
      "}\n"));
  ASSERT_EQ(rules_hit(diagnostics),
            std::vector<std::string>{"shard-shared-mutation"});
  EXPECT_EQ(diagnostics[0].line, 3u);
}

TEST(LintRuleTest, ShardSharedMutationCoversCompoundAndCallMutations) {
  EXPECT_TRUE(has_rule(lint_file(library_file(
                  "void f() {\n"
                  "  for_each_shard(n, [&](std::size_t s) {\n"
                  "    ctx.health.quality_unmet_tasks += 1;\n"
                  "  });\n"
                  "}\n")),
              "shard-shared-mutation"));
  EXPECT_TRUE(has_rule(lint_file(library_file(
                  "void f() {\n"
                  "  for_each_shard(n, [&](std::size_t s) {\n"
                  "    ctx->truth.push_back(0.0);\n"
                  "  });\n"
                  "}\n")),
              "shard-shared-mutation"));
  EXPECT_TRUE(has_rule(lint_file(library_file(
                  "void f() {\n"
                  "  for_each_shard(n, [&](std::size_t s) {\n"
                  "    ++ctx.data_iterations;\n"
                  "  });\n"
                  "}\n")),
              "shard-shared-mutation"));
}

TEST(LintRuleTest, ShardSharedMutationIgnoresReadsAndLocalState) {
  // Reads of ctx and writes to shard-local buffers (or disjoint slots of a
  // stage-owned vector) are the sanctioned pattern.
  EXPECT_TRUE(lint_file(library_file(
                  "void f() {\n"
                  "  for_each_shard(n, [&](std::size_t s) {\n"
                  "    local[s] = compute(ctx.observations, s);\n"
                  "    if (ctx.domain_count == 0) return;\n"
                  "    const double c = ctx.problem.cost_of(s);\n"
                  "    use(c);\n"
                  "  });\n"
                  "}\n"))
                  .empty());
  // Mutations outside the shard body are the serial merge — legal.
  EXPECT_TRUE(lint_file(library_file(
                  "void f() {\n"
                  "  for_each_shard(n, [&](std::size_t s) { work(s); });\n"
                  "  ctx.mle_iterations = merged;\n"
                  "}\n"))
                  .empty());
}

TEST(LintSuppressionTest, ShardSharedMutationSuppressible) {
  EXPECT_TRUE(lint_file(library_file(
                  "void f() {\n"
                  "  for_each_shard(n, [&](std::size_t s) {\n"
                  "    // eta2-lint: allow(shard-shared-mutation) — guarded\n"
                  "    ctx.health.shard_count = n;\n"
                  "  });\n"
                  "}\n"))
                  .empty());
}

TEST(LintCatalogueTest, EveryRuleIsDocumented) {
  const auto& rules = rule_catalogue();
  ASSERT_EQ(rules.size(), 14u);
  for (const auto& rule : rules) {
    EXPECT_FALSE(rule.name.empty());
    EXPECT_FALSE(rule.summary.empty());
  }
}

}  // namespace
}  // namespace eta2::lint
