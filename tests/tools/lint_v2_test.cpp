// eta2_lint v2 tests: the shared tokenizer, the cross-TU concurrency pass
// (rules guarded-by / lock-order / thread-exception-escape /
// unbounded-input-resize), the include-graph layer-DAG pass, the CLI
// stream contract, and the golden fixture tree that pins the nine v1
// rules across the scrubber -> tokenizer refactor.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "lint/cli.h"
#include "lint/include_graph.h"
#include "lint/lex.h"
#include "lint/linter.h"

namespace eta2::lint {
namespace {

bool has_rule(const std::vector<Diagnostic>& diagnostics,
              std::string_view rule) {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [&](const Diagnostic& d) { return d.rule == rule; });
}

std::string joined(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) out += format_diagnostic(d) + "\n";
  return out;
}

SourceFile library_file(std::string contents) {
  return SourceFile{"src/demo/widget.cpp", std::move(contents), false};
}

// --- tokenizer ------------------------------------------------------------

TEST(LexTest, TokenizesIdentifiersNumbersAndPunct) {
  const TokenizedSource source = tokenize("int x = f(42) + y_;\n");
  std::vector<std::string> texts;
  for (const Token& t : source.tokens) texts.emplace_back(t.text);
  EXPECT_EQ(texts, (std::vector<std::string>{"int", "x", "=", "f", "(", "42",
                                             ")", "+", "y_", ";"}));
  EXPECT_EQ(source.tokens.front().kind, TokenKind::kIdentifier);
  EXPECT_EQ(source.tokens[5].kind, TokenKind::kNumber);
  EXPECT_EQ(source.tokens.back().kind, TokenKind::kPunct);
}

TEST(LexTest, TracksLinesAndLexesMultiCharOperatorsGreedily) {
  const TokenizedSource source = tokenize("a += b;\nc <<= d->e;\nf :: g;\n");
  ASSERT_GE(source.tokens.size(), 3u);
  EXPECT_EQ(source.tokens[1].text, "+=");
  EXPECT_EQ(source.tokens[0].line, 1u);
  std::vector<std::string> texts;
  for (const Token& t : source.tokens) texts.emplace_back(t.text);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "<<="), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "->"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "::"), texts.end());
}

TEST(LexTest, PreprocessorLinesEmitNoTokens) {
  // An #if/#else would otherwise unbalance brace matching.
  const TokenizedSource source = tokenize(
      "#if defined(FOO)\n"
      "#define BAR(x) { x }\n"
      "#endif\n"
      "int y;\n");
  std::vector<std::string> texts;
  for (const Token& t : source.tokens) texts.emplace_back(t.text);
  EXPECT_EQ(texts, (std::vector<std::string>{"int", "y", ";"}));
}

TEST(LexTest, CommentsAndStringsAreScrubbedBeforeTokenizing) {
  const TokenizedSource source =
      tokenize("int a; // not_a_token\nconst char* s = \"not_a_token\";\n");
  for (const Token& t : source.tokens) EXPECT_NE(t.text, "not_a_token");
}

// --- rule 10: guarded-by ---------------------------------------------------

constexpr const char* kCounterHeader =
    "#ifndef DEMO_COUNTER_H\n"
    "#define DEMO_COUNTER_H\n"
    "class Counter {\n"
    " public:\n"
    "  void bump();\n"
    "  void locked_bump();\n"
    "  void required_bump() ETA2_REQUIRES(mutex_);\n"
    " private:\n"
    "  std::mutex mutex_;\n"
    "  int value_ ETA2_GUARDED_BY(mutex_) = 0;\n"
    "};\n"
    "#endif\n";

TEST(GuardedByTest, FiresOnUnlockedUseOfGuardedMember) {
  const auto diagnostics = lint_files(
      {{"src/demo/counter.h", kCounterHeader, false},
       {"src/demo/counter.cpp",
        "#include \"demo/counter.h\"\n"
        "void Counter::bump() { value_ += 1; }\n",
        true}});
  ASSERT_TRUE(has_rule(diagnostics, "guarded-by")) << joined(diagnostics);
  EXPECT_EQ(diagnostics[0].file, "src/demo/counter.cpp");
  EXPECT_EQ(diagnostics[0].line, 2u);
}

TEST(GuardedByTest, QuietWhenMutexLockedFirst) {
  const auto diagnostics = lint_files(
      {{"src/demo/counter.h", kCounterHeader, false},
       {"src/demo/counter.cpp",
        "#include \"demo/counter.h\"\n"
        "void Counter::bump() {\n"
        "  const std::lock_guard<std::mutex> lock(mutex_);\n"
        "  value_ += 1;\n"
        "}\n",
        true}});
  EXPECT_TRUE(diagnostics.empty()) << joined(diagnostics);
}

TEST(GuardedByTest, HeaderRequiresAnnotationCoversSiblingCppDefinition) {
  // The cross-TU merge: ETA2_REQUIRES declared in counter.h applies to the
  // definition in counter.cpp.
  const auto diagnostics = lint_files(
      {{"src/demo/counter.h", kCounterHeader, false},
       {"src/demo/counter.cpp",
        "#include \"demo/counter.h\"\n"
        "void Counter::required_bump() { value_ += 1; }\n",
        true}});
  EXPECT_TRUE(diagnostics.empty()) << joined(diagnostics);
}

TEST(GuardedByTest, FileLocalAnalysisMissesHeaderAnnotationsByDesign) {
  // lint_file sees only file-local annotations: the same cpp alone knows
  // nothing about value_, so nothing fires. This is exactly what lint_files
  // adds over per-file linting.
  const auto diagnostics = lint_file(
      {"src/demo/counter.cpp",
       "#include \"demo/counter.h\"\n"
       "void Counter::bump() { value_ += 1; }\n",
       true});
  EXPECT_TRUE(diagnostics.empty()) << joined(diagnostics);
}

TEST(GuardedByTest, ConstructorAndDestructorAreExempt) {
  const auto diagnostics = lint_files(
      {{"src/demo/counter.h", kCounterHeader, false},
       {"src/demo/counter.cpp",
        "#include \"demo/counter.h\"\n"
        "Counter::Counter() { value_ = 7; }\n"
        "Counter::~Counter() { value_ = 0; }\n",
        true}});
  EXPECT_TRUE(diagnostics.empty()) << joined(diagnostics);
}

TEST(GuardedByTest, OtherObjectsMembersAreNotMine) {
  const auto diagnostics = lint_files(
      {{"src/demo/counter.h", kCounterHeader, false},
       {"src/demo/counter.cpp",
        "#include \"demo/counter.h\"\n"
        "void Counter::bump() { other.value_ = 1; peer->value_ = 2; }\n",
        true}});
  EXPECT_TRUE(diagnostics.empty()) << joined(diagnostics);
}

TEST(GuardedByTest, SharedPlainStateWithThreadEntryFires) {
  // The PR 8 listen_fd_ class of bug: a plain member mutated in one
  // function and read from a thread entry point.
  const auto diagnostics = lint_file(library_file(
      "class Server {\n"
      " public:\n"
      "  void loop() ETA2_THREAD_ENTRY {\n"
      "    while (fd_ >= 0) { work(); }\n"
      "  }\n"
      "  void stop() { fd_ = -1; }\n"
      " private:\n"
      "  int fd_ = -1;\n"
      "};\n"));
  ASSERT_TRUE(has_rule(diagnostics, "guarded-by")) << joined(diagnostics);
  EXPECT_EQ(diagnostics[0].line, 6u);
}

TEST(GuardedByTest, AtomicSharedStateIsQuiet) {
  const auto diagnostics = lint_file(library_file(
      "class Server {\n"
      " public:\n"
      "  void loop() ETA2_THREAD_ENTRY {\n"
      "    while (fd_.load() >= 0) { work(); }\n"
      "  }\n"
      "  void stop() { fd_.store(-1); }\n"
      " private:\n"
      "  std::atomic<int> fd_{-1};\n"
      "};\n"));
  EXPECT_TRUE(diagnostics.empty()) << joined(diagnostics);
}

// --- rule 11: lock-order ---------------------------------------------------

TEST(LockOrderTest, FiresOnReversedAcquisitionOrder) {
  const auto diagnostics = lint_file(library_file(
      "std::mutex a_;\n"
      "std::mutex b_;\n"
      "void ab() {\n"
      "  const std::lock_guard<std::mutex> la(a_);\n"
      "  const std::lock_guard<std::mutex> lb(b_);\n"
      "}\n"
      "void ba() {\n"
      "  const std::lock_guard<std::mutex> lb(b_);\n"
      "  const std::lock_guard<std::mutex> la(a_);\n"
      "}\n"));
  ASSERT_TRUE(has_rule(diagnostics, "lock-order")) << joined(diagnostics);
  EXPECT_EQ(diagnostics[0].line, 9u);
}

TEST(LockOrderTest, ConsistentOrderIsQuiet) {
  EXPECT_TRUE(lint_file(library_file(
                  "std::mutex a_;\n"
                  "std::mutex b_;\n"
                  "void f() {\n"
                  "  const std::lock_guard<std::mutex> la(a_);\n"
                  "  const std::lock_guard<std::mutex> lb(b_);\n"
                  "}\n"
                  "void g() {\n"
                  "  const std::lock_guard<std::mutex> la(a_);\n"
                  "  const std::lock_guard<std::mutex> lb(b_);\n"
                  "}\n"))
                  .empty());
}

TEST(LockOrderTest, ScopeEndReleasesRaiiGuards) {
  // The first lock is released by its closing brace before the second is
  // taken — no ordering edge, no cycle.
  EXPECT_TRUE(lint_file(library_file(
                  "std::mutex a_;\n"
                  "std::mutex b_;\n"
                  "void f() {\n"
                  "  { const std::lock_guard<std::mutex> la(a_); }\n"
                  "  const std::lock_guard<std::mutex> lb(b_);\n"
                  "}\n"
                  "void g() {\n"
                  "  { const std::lock_guard<std::mutex> lb(b_); }\n"
                  "  const std::lock_guard<std::mutex> la(a_);\n"
                  "}\n"))
                  .empty());
}

TEST(LockOrderTest, ScopedLockArgumentListIsDeadlockFree) {
  // std::scoped_lock orders its whole argument list internally.
  EXPECT_TRUE(lint_file(library_file(
                  "std::mutex a_;\n"
                  "std::mutex b_;\n"
                  "void f() { const std::scoped_lock lock(a_, b_); }\n"
                  "void g() { const std::scoped_lock lock(b_, a_); }\n"))
                  .empty());
}

TEST(LockOrderTest, ManualUnlockReleasesTheMutex) {
  EXPECT_TRUE(lint_file(library_file(
                  "std::mutex a_;\n"
                  "std::mutex b_;\n"
                  "void f() { a_.lock(); a_.unlock(); b_.lock(); b_.unlock(); }\n"
                  "void g() { b_.lock(); b_.unlock(); a_.lock(); a_.unlock(); }\n"))
                  .empty());
}

TEST(LockOrderTest, RequiresAnnotationCountsAsHeld) {
  const auto diagnostics = lint_file(library_file(
      "std::mutex a_;\n"
      "std::mutex b_;\n"
      "void f() {\n"
      "  const std::lock_guard<std::mutex> la(a_);\n"
      "  const std::lock_guard<std::mutex> lb(b_);\n"
      "}\n"
      "void g() ETA2_REQUIRES(b_) {\n"
      "  const std::lock_guard<std::mutex> la(a_);\n"
      "}\n"));
  ASSERT_TRUE(has_rule(diagnostics, "lock-order")) << joined(diagnostics);
  EXPECT_EQ(diagnostics[0].line, 8u);
}

// --- rule 12: thread-exception-escape --------------------------------------

TEST(ThreadExceptionTest, TryWithoutCatchAllFiresInThreadEntry) {
  const auto diagnostics = lint_file(library_file(
      "class S {\n"
      " public:\n"
      "  void loop() ETA2_THREAD_ENTRY;\n"
      "};\n"
      "void S::loop() {\n"
      "  try { work(); } catch (const std::exception& e) { log(e); }\n"
      "}\n"));
  ASSERT_TRUE(has_rule(diagnostics, "thread-exception-escape"))
      << joined(diagnostics);
  EXPECT_EQ(diagnostics[0].line, 6u);
}

TEST(ThreadExceptionTest, CatchAllArmProtectsTheTry) {
  const auto diagnostics = lint_file(library_file(
      "void loop() ETA2_THREAD_ENTRY {\n"
      "  // eta2-lint: allow(catch-all) — thread boundary backstop\n"
      "  try { buffer.push_back(1); } catch (...) { count(); }\n"
      "}\n"));
  EXPECT_TRUE(diagnostics.empty()) << joined(diagnostics);
}

TEST(ThreadExceptionTest, ThrowingCallOutsideTryFires) {
  const auto diagnostics = lint_file(library_file(
      "void loop() ETA2_THREAD_ENTRY {\n"
      "  buffer.push_back(1);\n"
      "}\n"));
  ASSERT_TRUE(has_rule(diagnostics, "thread-exception-escape"))
      << joined(diagnostics);
  EXPECT_EQ(diagnostics[0].line, 2u);
}

TEST(ThreadExceptionTest, NoThrowBoundaryGetsTheSameChecks) {
  EXPECT_TRUE(has_rule(
      lint_file(library_file(
          "void close_all() ETA2_NO_THROW_BOUNDARY { names.resize(9); }\n")),
      "thread-exception-escape"));
  EXPECT_TRUE(lint_file(library_file(
                  "void close_all() ETA2_NO_THROW_BOUNDARY { fd = -1; }\n"))
                  .empty());
}

TEST(ThreadExceptionTest, UnannotatedFunctionsAreNotChecked) {
  EXPECT_TRUE(lint_file(library_file(
                  "void helper() { buffer.push_back(1); }\n"))
                  .empty());
}

// --- rule 13: unbounded-input-resize ---------------------------------------

TEST(UnboundedResizeTest, FiresOnStreamTaintedResize) {
  const auto diagnostics = lint_file(library_file(
      "void load(std::istream& in, std::vector<int>& values) {\n"
      "  std::size_t n = 0;\n"
      "  in >> n;\n"
      "  values.resize(n);\n"
      "}\n"));
  ASSERT_TRUE(has_rule(diagnostics, "unbounded-input-resize"))
      << joined(diagnostics);
  EXPECT_EQ(diagnostics[0].line, 4u);
}

TEST(UnboundedResizeTest, FiresOnStoTaintedReserve) {
  const auto diagnostics = lint_file(library_file(
      "void parse(const std::string& s, std::vector<int>& values) {\n"
      "  std::size_t n = 0;\n"
      "  n = std::stoull(s);\n"
      "  values.reserve(n);\n"
      "}\n"));
  EXPECT_TRUE(has_rule(diagnostics, "unbounded-input-resize"))
      << joined(diagnostics);
}

TEST(UnboundedResizeTest, BoundCheckBetweenTaintAndUseIsQuiet) {
  EXPECT_TRUE(lint_file(library_file(
                  "void load(std::istream& in, std::vector<int>& values) {\n"
                  "  std::size_t n = 0;\n"
                  "  in >> n;\n"
                  "  require(n <= kMaxEntries, \"count\");\n"
                  "  values.resize(n);\n"
                  "}\n"))
                  .empty());
  EXPECT_TRUE(lint_file(library_file(
                  "void load(std::istream& in, std::vector<int>& values) {\n"
                  "  std::size_t n = 0;\n"
                  "  in >> n;\n"
                  "  check_count(n, 2, payload.size(), \"count\");\n"
                  "  values.resize(n);\n"
                  "}\n"))
                  .empty());
}

TEST(UnboundedResizeTest, UntaintedCountsAreQuiet) {
  EXPECT_TRUE(lint_file(library_file(
                  "void f(std::vector<int>& values, std::size_t n) {\n"
                  "  values.resize(n);\n"
                  "}\n"))
                  .empty());
}

TEST(UnboundedResizeTest, Suppressible) {
  EXPECT_TRUE(lint_file(library_file(
                  "void load(std::istream& in, std::vector<int>& values) {\n"
                  "  std::size_t n = 0;\n"
                  "  in >> n;\n"
                  "  // eta2-lint: allow(unbounded-input-resize) — own file\n"
                  "  values.resize(n);\n"
                  "}\n"))
                  .empty());
}

// --- rule 14: layer-dag ----------------------------------------------------

TEST(LayerDagTest, LayerMapMatchesTheDesign) {
  EXPECT_EQ(layer_of("src/common/check.h"), 0);
  EXPECT_EQ(layer_of("src/stats/mean.cpp"), 1);
  EXPECT_EQ(layer_of("src/text/embedder.h"), 1);
  EXPECT_EQ(layer_of("src/io/journal.cpp"), 2);
  EXPECT_EQ(layer_of("src/truth/eta2_mle.cpp"), 2);
  EXPECT_EQ(layer_of("src/alloc/greedy.cpp"), 2);
  EXPECT_EQ(layer_of("src/clustering/dynamic_clusterer.cpp"), 2);
  EXPECT_EQ(layer_of("src/core/eta2_server.cpp"), 3);
  EXPECT_EQ(layer_of("src/sim/simulation.cpp"), 4);
  EXPECT_EQ(layer_of("src/serve/service.cpp"), 4);
  EXPECT_EQ(layer_of("tools/eta2_cli.cpp"), 5);
  EXPECT_EQ(layer_of("src/demo/widget.cpp"), -1);
}

TEST(LayerDagTest, UpwardIncludeFires) {
  const auto diagnostics = lint_files(
      {{"src/common/a.h",
        "#ifndef A_H\n#define A_H\n#include \"core/b.h\"\n#endif\n", false},
       {"src/core/b.h", "#ifndef B_H\n#define B_H\nint b();\n#endif\n",
        false}});
  ASSERT_TRUE(has_rule(diagnostics, "layer-dag")) << joined(diagnostics);
  EXPECT_EQ(diagnostics[0].file, "src/common/a.h");
  EXPECT_EQ(diagnostics[0].line, 3u);
}

TEST(LayerDagTest, DownwardIncludeIsQuiet) {
  EXPECT_TRUE(lint_files({{"src/core/b.h",
                           "#ifndef B_H\n#define B_H\n"
                           "#include \"common/a.h\"\n#endif\n",
                           false},
                          {"src/common/a.h",
                           "#ifndef A_H\n#define A_H\nint a();\n#endif\n",
                           false}})
                  .empty());
}

TEST(LayerDagTest, IncludeCycleFires) {
  const auto diagnostics = lint_files(
      {{"src/core/x.h",
        "#ifndef X_H\n#define X_H\n#include \"core/y.h\"\n#endif\n", false},
       {"src/core/y.h",
        "#ifndef Y_H\n#define Y_H\n#include \"core/x.h\"\n#endif\n", false}});
  ASSERT_TRUE(has_rule(diagnostics, "layer-dag")) << joined(diagnostics);
  EXPECT_NE(diagnostics[0].message.find("cycle"), std::string::npos);
}

TEST(LayerDagTest, UpwardIncludeSuppressible) {
  EXPECT_TRUE(lint_files(
                  {{"src/common/a.h",
                    "#ifndef A_H\n#define A_H\n"
                    "// eta2-lint: allow(layer-dag) — known debt\n"
                    "#include \"core/b.h\"\n#endif\n",
                    false},
                   {"src/core/b.h",
                    "#ifndef B_H\n#define B_H\nint b();\n#endif\n", false}})
                  .empty());
}

TEST(LayerDagTest, DotExportClustersByLayerAndListsEdges) {
  const std::vector<SourceFile> files = {
      {"src/common/a.h", "#ifndef A\n#define A\n#endif\n", false},
      {"src/core/b.h",
       "#ifndef B\n#define B\n#include \"common/a.h\"\n#endif\n", false}};
  const std::string dot = include_graph_dot(build_include_graph(files));
  EXPECT_NE(dot.find("digraph eta2_includes"), std::string::npos);
  EXPECT_NE(dot.find("\"src/common/a.h\""), std::string::npos);
  EXPECT_NE(dot.find("\"src/core/b.h\" -> \"src/common/a.h\""),
            std::string::npos);
  EXPECT_NE(dot.find("layer 0: common"), std::string::npos);
}

// --- CLI stream contract ---------------------------------------------------

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("eta2_lint_cli_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(root_ / "src/demo");
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void write(const std::string& relative, const std::string& contents) {
    const auto path = root_ / relative;
    std::filesystem::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary);
    out << contents;
  }

  int run(const std::vector<std::string>& args) {
    out_.str("");
    err_.str("");
    return run_cli(args, out_, err_);
  }

  std::filesystem::path root_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, CleanTreePrintsCleanToStdoutOnly) {
  write("src/demo/ok.cpp", "int f() { return 1; }\n");
  EXPECT_EQ(run({"--root", root_.string()}), 0);
  EXPECT_EQ(out_.str(), "eta2_lint: clean\n");
  EXPECT_EQ(err_.str(), "");
}

TEST_F(CliTest, ViolationsGoToStdoutWithSummaryAndExit1) {
  write("src/demo/bad.cpp", "int f() { return rand(); }\n");
  EXPECT_EQ(run({"--root", root_.string()}), 1);
  EXPECT_NE(out_.str().find("src/demo/bad.cpp:1: [nondeterminism]"),
            std::string::npos);
  EXPECT_NE(out_.str().find("eta2_lint: 1 violation(s)"), std::string::npos);
  EXPECT_EQ(err_.str(), "");
}

TEST_F(CliTest, MissingRootIsAnErrorOnStderrExit2) {
  EXPECT_EQ(run({"--root", (root_ / "no_such_dir").string()}), 2);
  EXPECT_EQ(out_.str(), "");
  EXPECT_NE(err_.str().find("not a directory"), std::string::npos);
}

TEST_F(CliTest, UnknownFlagIsUsageErrorOnStderrExit2) {
  EXPECT_EQ(run({"--frobnicate"}), 2);
  EXPECT_EQ(out_.str(), "");
  EXPECT_NE(err_.str().find("unknown argument"), std::string::npos);
  EXPECT_NE(err_.str().find("usage:"), std::string::npos);
}

TEST_F(CliTest, ListRulesPrintsTheFullCatalogue) {
  EXPECT_EQ(run({"--list-rules"}), 0);
  for (const RuleInfo& rule : rule_catalogue()) {
    EXPECT_NE(out_.str().find(std::string(rule.name) + ":"),
              std::string::npos);
  }
  EXPECT_EQ(err_.str(), "");
}

TEST_F(CliTest, LayerDagModeRunsOnlyTheIncludeGraphPass) {
  // rand() would fail a full lint; --layer-dag ignores it but still flags
  // the upward include.
  write("src/common/a.h",
        "#ifndef A_H\n#define A_H\n#include \"core/b.h\"\n#endif\n");
  write("src/core/b.h", "#ifndef B_H\n#define B_H\nint b();\n#endif\n");
  write("src/core/c.cpp", "int f() { return rand(); }\n");
  EXPECT_EQ(run({"--root", root_.string(), "--layer-dag"}), 1);
  EXPECT_NE(out_.str().find("[layer-dag]"), std::string::npos);
  EXPECT_EQ(out_.str().find("nondeterminism"), std::string::npos);
}

TEST_F(CliTest, DotFlagWritesTheIncludeGraph) {
  write("src/common/a.h", "#ifndef A_H\n#define A_H\n#endif\n");
  write("src/core/b.h",
        "#ifndef B_H\n#define B_H\n#include \"common/a.h\"\n#endif\n");
  const std::string dot_file = (root_ / "graph.dot").string();
  EXPECT_EQ(run({"--root", root_.string(), "--dot=" + dot_file}), 0);
  std::ifstream in(dot_file, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("\"src/core/b.h\" -> \"src/common/a.h\""),
            std::string::npos);
}

TEST_F(CliTest, EmptyDotPathIsUsageErrorExit2) {
  EXPECT_EQ(run({"--dot="}), 2);
  EXPECT_NE(err_.str().find("--dot needs a file path"), std::string::npos);
}

// --- golden fixture tree ---------------------------------------------------

#ifndef ETA2_LINT_TREE_DIR
#error "ETA2_LINT_TREE_DIR must point at tests/tools/lint_tree"
#endif

TEST(GoldenTreeTest, NineV1RulesFireExactlyWhereTheyAlwaysDid) {
  // Pins the scrubber -> tokenizer refactor: every v1 rule still fires on
  // the committed fixture tree at the same (file, line), and nothing else
  // fires. A tokenizer regression shows up as a diff in this set.
  using Finding = std::tuple<std::string, std::size_t, std::string>;
  std::set<Finding> got;
  for (const Diagnostic& d : lint_tree(ETA2_LINT_TREE_DIR)) {
    got.insert({d.file, d.line, d.rule});
  }
  const std::set<Finding> expected = {
      {"src/demo/catchall.cpp", 2, "catch-all"},
      {"src/demo/float_eq.cpp", 1, "float-equality"},
      {"src/demo/hotloop.cpp", 3, "hot-loop-require"},
      {"src/demo/nondet.cpp", 1, "nondeterminism"},
      {"src/demo/noguard.h", 0, "missing-include-guard"},
      {"src/demo/output.cpp", 1, "library-output"},
      {"src/demo/selfinc.cpp", 1, "self-include-first"},
      {"src/demo/shard.cpp", 3, "shard-shared-mutation"},
      {"src/demo/unordered.cpp", 4, "unordered-iteration"},
  };
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace eta2::lint
