struct Widget {};
