void report() { std::cout << 1; }
