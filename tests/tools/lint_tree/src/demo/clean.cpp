#include "demo/clean.h"
int add(int a, int b) { return a + b; }
