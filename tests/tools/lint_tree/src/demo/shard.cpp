void f(StepContext& ctx) {
  truth::for_each_shard(shards, [&](std::size_t s) {
    ctx.mle_iterations = 3;
  });
}
