#ifndef DEMO_SELFINC_H
#define DEMO_SELFINC_H
int g();
#endif
