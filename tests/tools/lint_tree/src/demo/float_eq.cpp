bool b = x == 0.0;
