#include <vector>
#include "demo/selfinc.h"
int g() { return 0; }
