int f() { return rand(); }
