void f() {
  parallel::parallel_for(n, 16, [&](std::size_t i) {
    require(i < limit, "out of range");
  });
}
