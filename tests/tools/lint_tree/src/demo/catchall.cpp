void f() {
  try { g(); } catch (...) { }
}
