#include <unordered_map>
std::unordered_map<int, int> counts;
void f() {
  for (const auto& [k, v] : counts) { use(k, v); }
}
