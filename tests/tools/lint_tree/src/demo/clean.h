#ifndef DEMO_CLEAN_H
#define DEMO_CLEAN_H
int add(int a, int b);
#endif
