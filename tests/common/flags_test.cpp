#include "common/flags.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace eta2 {
namespace {

Flags make_flags(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsSyntax) {
  const Flags flags = make_flags({"--name=value", "--count=5"});
  EXPECT_EQ(flags.get("name", ""), "value");
  EXPECT_EQ(flags.get_int("count", 0), 5);
}

TEST(FlagsTest, SpaceSyntax) {
  const Flags flags = make_flags({"--name", "value"});
  EXPECT_EQ(flags.get("name", ""), "value");
}

TEST(FlagsTest, BareFlagIsBooleanTrue) {
  const Flags flags = make_flags({"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_TRUE(flags.has("verbose"));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const Flags flags = make_flags({});
  EXPECT_EQ(flags.get("missing", "fallback"), "fallback");
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.get_bool("missing", false));
  EXPECT_FALSE(flags.has("missing"));
}

TEST(FlagsTest, ExplicitFalseValues) {
  const Flags flags = make_flags({"--a=false", "--b=0"});
  EXPECT_FALSE(flags.get_bool("a", true));
  EXPECT_FALSE(flags.get_bool("b", true));
}

TEST(FlagsTest, PositionalArguments) {
  const Flags flags = make_flags({"input.csv", "--opt=1", "output.csv"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "output.csv");
}

TEST(FlagsTest, DoubleParsing) {
  const Flags flags = make_flags({"--gamma=0.65"});
  EXPECT_DOUBLE_EQ(flags.get_double("gamma", 0.0), 0.65);
}

TEST(FlagsTest, BareFlagFollowedByFlag) {
  const Flags flags = make_flags({"--verbose", "--count=3"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_int("count", 0), 3);
}

TEST(FlagsTest, FromTokensKeepsTheFirstToken) {
  // Regression: the argv constructor skips argv[0], so building Flags
  // straight from persisted tokens silently dropped the first one (the
  // `eta2 resume` manifest bug). from_tokens must parse every token.
  const Flags flags =
      Flags::from_tokens({"--durable=dir", "--dataset=synthetic", "--seed=7"});
  EXPECT_EQ(flags.get("durable", ""), "dir");
  EXPECT_EQ(flags.get("dataset", ""), "synthetic");
  EXPECT_EQ(flags.get_int("seed", 0), 7);
}

TEST(FlagsTest, FromTokensOnEmptyTokens) {
  const Flags flags = Flags::from_tokens({});
  EXPECT_FALSE(flags.has("anything"));
  EXPECT_TRUE(flags.positional().empty());
}

TEST(FlagsTest, SeedCountPriority) {
  ::unsetenv("ETA2_SEEDS");
  const Flags with_flag = make_flags({"--seeds=9"});
  EXPECT_EQ(with_flag.seed_count(3), 9);

  const Flags without = make_flags({});
  EXPECT_EQ(without.seed_count(3), 3);

  ::setenv("ETA2_SEEDS", "12", 1);
  EXPECT_EQ(without.seed_count(3), 12);
  // Flag wins over environment.
  EXPECT_EQ(with_flag.seed_count(3), 9);
  ::unsetenv("ETA2_SEEDS");
}

}  // namespace
}  // namespace eta2
