// ETA2_CHECKS=1 (cheap, the default): EXPECTS/ENSURES are live and throw
// ContractViolation; ASSERT compiles out and never evaluates.
#undef ETA2_CHECKS
#define ETA2_CHECKS 1
#include "common/check.h"

#include <gtest/gtest.h>

namespace {

// Deliberately never called: ETA2_ASSERT compiles out below full, so the
// compiler sees no reference to this function.
[[maybe_unused]] bool fail_and_count(int& count) {
  ++count;
  return false;
}

TEST(CheckLevelCheapTest, ExpectsThrowsOnViolation) {
  EXPECT_THROW(ETA2_EXPECTS(1 + 1 == 3), eta2::ContractViolation);
  EXPECT_NO_THROW(ETA2_EXPECTS(1 + 1 == 2));
}

TEST(CheckLevelCheapTest, EnsuresThrowsOnViolation) {
  EXPECT_THROW(ETA2_ENSURES(false), eta2::ContractViolation);
  EXPECT_NO_THROW(ETA2_ENSURES(true));
}

TEST(CheckLevelCheapTest, AssertCompilesOutAndIsUnevaluated) {
  int count = 0;
  EXPECT_NO_THROW(ETA2_ASSERT(fail_and_count(count)));
  EXPECT_EQ(count, 0);
}

TEST(CheckLevelCheapTest, ViolationRecordsKindAndStringifiedExpression) {
  try {
    const double sigma = -1.0;
    ETA2_EXPECTS(sigma > 0.0);
    FAIL() << "EXPECTS did not throw";
  } catch (const eta2::ContractViolation& violation) {
    EXPECT_EQ(violation.kind(), "EXPECTS");
    EXPECT_EQ(violation.expression(), "sigma > 0.0");
    EXPECT_NE(violation.file().find("check_level_cheap_test.cpp"),
              std::string::npos);
    EXPECT_GT(violation.line(), 0);
  }
}

}  // namespace
