// ETA2_CHECKS=2 (full): all three macros are live, including the hot-path
// ETA2_ASSERT.
#undef ETA2_CHECKS
#define ETA2_CHECKS 2
#include "common/check.h"

#include <gtest/gtest.h>

namespace {

TEST(CheckLevelFullTest, AllThreeMacrosAreLive) {
  EXPECT_THROW(ETA2_EXPECTS(false), eta2::ContractViolation);
  EXPECT_THROW(ETA2_ENSURES(false), eta2::ContractViolation);
  EXPECT_THROW(ETA2_ASSERT(false), eta2::ContractViolation);
}

TEST(CheckLevelFullTest, PassingConditionsAreSilent) {
  EXPECT_NO_THROW(ETA2_EXPECTS(true));
  EXPECT_NO_THROW(ETA2_ENSURES(true));
  EXPECT_NO_THROW(ETA2_ASSERT(true));
}

TEST(CheckLevelFullTest, AssertViolationNamesItsKind) {
  try {
    ETA2_ASSERT(2 < 1);
    FAIL() << "ASSERT did not throw";
  } catch (const eta2::ContractViolation& violation) {
    EXPECT_EQ(violation.kind(), "ASSERT");
    EXPECT_EQ(violation.expression(), "2 < 1");
  }
}

}  // namespace
