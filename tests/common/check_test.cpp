// Contract-layer tests: ContractViolation carries kind/expression/location,
// and the macros behave per the build level. This TU uses the build's
// default level; the three check_level_*_test.cpp TUs pin each level
// explicitly (off / cheap / full) regardless of how the build was
// configured.
#include "common/check.h"

#include <gtest/gtest.h>

#include <string>

namespace eta2 {
namespace {

TEST(ContractViolationTest, CarriesKindExpressionAndLocation) {
  const ContractViolation violation("EXPECTS", "x > 0", "src/foo.cpp", 42);
  EXPECT_EQ(violation.kind(), "EXPECTS");
  EXPECT_EQ(violation.expression(), "x > 0");
  EXPECT_EQ(violation.file(), "src/foo.cpp");
  EXPECT_EQ(violation.line(), 42);
}

TEST(ContractViolationTest, WhatNamesEverything) {
  const ContractViolation violation("ASSERT", "p >= 0.0 && p <= 1.0",
                                    "src/alloc/max_quality.cpp", 7);
  const std::string what = violation.what();
  EXPECT_NE(what.find("ASSERT"), std::string::npos);
  EXPECT_NE(what.find("p >= 0.0 && p <= 1.0"), std::string::npos);
  EXPECT_NE(what.find("src/alloc/max_quality.cpp:7"), std::string::npos);
}

TEST(ContractViolationTest, IsALogicError) {
  // Contract violations are programming errors, distinct from the
  // NumericalError/invalid_argument taxonomy the degradation paths catch.
  const ContractViolation violation("ENSURES", "ok", "f.cpp", 1);
  const std::logic_error* as_logic = &violation;
  EXPECT_NE(as_logic, nullptr);
}

TEST(ContractFailTest, ThrowsWithMacroExpansionShape) {
  try {
    detail::contract_fail("EXPECTS", "cap >= 0.0", "src/alloc/a.cpp", 99);
    FAIL() << "contract_fail returned";
  } catch (const ContractViolation& violation) {
    EXPECT_EQ(violation.kind(), "EXPECTS");
    EXPECT_EQ(violation.expression(), "cap >= 0.0");
    EXPECT_EQ(violation.line(), 99);
    EXPECT_NE(std::string(violation.what()).find("contract violation"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace eta2
