// ETA2_CHECKS=0 (off): every macro must compile to nothing and must NOT
// evaluate its condition — off means zero cost, including side effects.
// The #undef overrides the project-wide -DETA2_CHECKS=... for this TU only
// (same mechanism as NDEBUG/assert), which is exactly what the test needs.
#undef ETA2_CHECKS
#define ETA2_CHECKS 0
#include "common/check.h"

#include <gtest/gtest.h>

namespace {

int& evaluation_count() {
  static int count = 0;
  return count;
}

// Deliberately never called: at level 0 the macros discard their argument
// without evaluating it, so the compiler sees no reference to this function.
[[maybe_unused]] bool count_and_fail() {
  ++evaluation_count();
  return false;
}

TEST(CheckLevelOffTest, ExpectsIsFreeAndUnevaluated) {
  evaluation_count() = 0;
  EXPECT_NO_THROW(ETA2_EXPECTS(count_and_fail()));
  EXPECT_EQ(evaluation_count(), 0);
}

TEST(CheckLevelOffTest, EnsuresIsFreeAndUnevaluated) {
  evaluation_count() = 0;
  EXPECT_NO_THROW(ETA2_ENSURES(count_and_fail()));
  EXPECT_EQ(evaluation_count(), 0);
}

TEST(CheckLevelOffTest, AssertIsFreeAndUnevaluated) {
  evaluation_count() = 0;
  EXPECT_NO_THROW(ETA2_ASSERT(count_and_fail()));
  EXPECT_EQ(evaluation_count(), 0);
}

}  // namespace
