#include "common/table.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eta2 {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.add_row({"x"});
  const std::string out = table.to_string();
  // Must render without throwing and contain the partial row.
  EXPECT_NE(out.find("| x"), std::string::npos);
}

TEST(TableTest, NumericRowFormatting) {
  Table table({"v1", "v2"});
  table.add_numeric_row({1.23456, 2.0}, 2);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(TableTest, FormatHandlesNaN) {
  EXPECT_EQ(Table::format(std::nan(""), 3), "nan");
  EXPECT_EQ(Table::format(1.5, 1), "1.5");
  EXPECT_EQ(Table::format(-0.25, 2), "-0.25");
}

TEST(TableTest, ColumnWidthTracksWidestCell) {
  Table table({"h"});
  table.add_row({"wiiiiiiide"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| wiiiiiiide |"), std::string::npos);
  EXPECT_NE(out.find("| h          |"), std::string::npos);
}

}  // namespace
}  // namespace eta2
