#include "common/strings.h"

#include <gtest/gtest.h>

namespace eta2 {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitTest, PreservesEmptyFields) {
  const auto fields = split(",a,,b,", ',');
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[4], "");
}

TEST(SplitTest, NoDelimiterYieldsWholeString) {
  const auto fields = split("hello", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "hello");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  const auto fields = split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(SplitWhitespaceTest, DropsEmptyTokens) {
  const auto tokens = split_whitespace("  alpha \t beta\n gamma  ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "alpha");
  EXPECT_EQ(tokens[1], "beta");
  EXPECT_EQ(tokens[2], "gamma");
}

TEST(SplitWhitespaceTest, AllWhitespaceYieldsNothing) {
  EXPECT_TRUE(split_whitespace(" \t\n ").empty());
}

TEST(ToLowerTest, MixedCase) {
  EXPECT_EQ(to_lower("HeLLo World 123"), "hello world 123");
}

TEST(TrimTest, TrimsBothSides) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(ends_with("file.csv", ".csv"));
  EXPECT_FALSE(ends_with("csv", ".csv"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

}  // namespace
}  // namespace eta2
