#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace eta2 {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 8.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 8.25);
  }
}

TEST(RngTest, UniformIntCoversFullRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 9);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
  }
}

TEST(RngTest, UniformIntNegativeRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-10, -3);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -3);
  }
}

TEST(RngTest, UniformIntIsApproximatelyUniform) {
  Rng rng(23);
  std::vector<int> counts(8, 0);
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_int(0, 7)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 0.125, 0.01);
  }
}

TEST(RngTest, NormalMomentsMatchStandardNormal) {
  Rng rng(29);
  constexpr int kN = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.02);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(31);
  constexpr int kN = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(37);
  constexpr int kN = 100000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, ForksOfIdenticalStatesMatch) {
  Rng parent_a(99);
  Rng parent_c(99);
  Rng child_a = parent_a.fork(5);
  Rng child_c = parent_c.fork(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child_a(), child_c());
  }
}

TEST(RngTest, ForkDoesNotPerturbParentSequence) {
  Rng with_fork(99);
  Rng without_fork(99);
  (void)with_fork.fork(3);  // fork is const: parent stream must be unchanged
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(with_fork(), without_fork());
  }
}

TEST(RngTest, ForkedStreamsWithDifferentIndicesDiffer) {
  Rng parent(99);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a() == child_b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::is_sorted(shuffled.begin(), shuffled.end()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleHandlesTrivialSizes) {
  Rng rng(47);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{7});
}

// Property sweep: the uniform_int rejection sampler must stay unbiased for a
// variety of range sizes, including ones near powers of two.
class RngUniformIntSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RngUniformIntSweep, MeanMatchesRangeMidpoint) {
  const std::int64_t hi = GetParam();
  Rng rng(static_cast<std::uint64_t>(hi) * 977 + 1);
  constexpr int kN = 40000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    const std::int64_t v = rng.uniform_int(0, hi);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, hi);
    sum += static_cast<double>(v);
  }
  const double expected = static_cast<double>(hi) / 2.0;
  const double tolerance = 0.02 * static_cast<double>(hi + 1);
  EXPECT_NEAR(sum / kN, expected, tolerance);
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngUniformIntSweep,
                         ::testing::Values<std::int64_t>(1, 2, 3, 7, 8, 15, 16,
                                                         100, 1023, 1024));

}  // namespace
}  // namespace eta2
