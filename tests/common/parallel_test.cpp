#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace eta2::parallel {
namespace {

// Restores automatic thread-count resolution when a test exits.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t n) { set_thread_count(n); }
  ~ThreadCountGuard() { set_thread_count(0); }
};

TEST(ParallelTest, ThreadCountOverride) {
  const ThreadCountGuard guard(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(0);
  EXPECT_GE(thread_count(), 1u);
}

TEST(ParallelTest, ParallelForZeroItems) {
  const ThreadCountGuard guard(4);
  std::atomic<int> calls{0};
  parallel_for(0, 16, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelTest, ParallelForCoversEveryIndexOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    const ThreadCountGuard guard(threads);
    // n deliberately not a multiple of the grain; more threads than chunks
    // in the small case below.
    for (const std::size_t n : {std::size_t{1}, std::size_t{5},
                                std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      parallel_for(n, 7, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
      }
    }
  }
}

TEST(ParallelTest, ChunkBoundariesIndependentOfThreadCount) {
  // Record the chunk decomposition at several thread counts; the contract
  // is that it depends only on (n, grain).
  auto decompose = [](std::size_t threads) {
    set_thread_count(threads);
    std::vector<std::pair<std::size_t, std::size_t>> chunks(100);
    std::atomic<std::size_t> count{0};
    parallel_for_chunks(103, 10, [&](std::size_t begin, std::size_t end) {
      chunks[begin / 10] = {begin, end};
      ++count;
    });
    set_thread_count(0);
    chunks.resize(count.load());
    return chunks;
  };
  const auto serial = decompose(1);
  EXPECT_EQ(serial.size(), 11u);
  EXPECT_EQ(serial.back().second, 103u);
  EXPECT_EQ(decompose(2), serial);
  EXPECT_EQ(decompose(8), serial);
}

TEST(ParallelTest, ReduceMatchesSerialSum) {
  std::vector<double> values(10000);
  std::iota(values.begin(), values.end(), 1.0);
  auto run = [&](std::size_t threads) {
    const ThreadCountGuard guard(threads);
    return parallel_reduce(
        values.size(), 128, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double sum = 0.0;
          for (std::size_t i = begin; i < end; ++i) sum += values[i];
          return sum;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = run(1);
  // Fixed chunk boundaries + in-order combination: bitwise equality.
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ParallelTest, ReduceZeroItemsReturnsIdentity) {
  const ThreadCountGuard guard(4);
  const double result = parallel_reduce(
      0, 16, 42.0, [](std::size_t, std::size_t) { return 0.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(result, 42.0);
}

TEST(ParallelTest, ReduceFewerItemsThanThreads) {
  const ThreadCountGuard guard(8);
  const double result = parallel_reduce(
      3, 1, 0.0,
      [](std::size_t begin, std::size_t end) {
        double sum = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          sum += static_cast<double>(i + 1);
        }
        return sum;
      },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(result, 6.0);
}

TEST(ParallelTest, ExceptionsPropagateToCaller) {
  const ThreadCountGuard guard(4);
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> calls{0};
  parallel_for(50, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 50);
}

TEST(ParallelTest, NestedRegionsRunInline) {
  const ThreadCountGuard guard(4);
  EXPECT_FALSE(in_parallel_region());
  std::atomic<int> inner_total{0};
  parallel_for(4, 1, [&](std::size_t) {
    EXPECT_TRUE(in_parallel_region());
    // Nested region: must execute inline without deadlocking.
    parallel_for(10, 2, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 40);
  EXPECT_FALSE(in_parallel_region());
}

TEST(ParallelTest, SetThreadCountInsideRegionThrows) {
  const ThreadCountGuard guard(2);
  EXPECT_THROW(parallel_for(4, 1, [](std::size_t) { set_thread_count(5); }),
               std::invalid_argument);
}

}  // namespace
}  // namespace eta2::parallel
