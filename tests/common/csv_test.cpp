#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace eta2 {
namespace {

TEST(CsvWriterTest, PlainRow) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriterTest, EscapesCommasAndQuotes) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a,b", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvWriterTest, VariadicWriteFormatsNumbers) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write("label", 1.5, 42);
  EXPECT_EQ(out.str(), "label,1.5,42\n");
}

TEST(CsvWriterTest, NumbersRoundTripThroughParse) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write(0.1 + 0.2, 1e-17, 12345.6789);
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][0]), 0.1 + 0.2);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][1]), 1e-17);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][2]), 12345.6789);
}

TEST(CsvParseTest, SimpleLine) {
  const auto fields = parse_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvParseTest, QuotedFieldWithComma) {
  const auto fields = parse_csv_line("\"a,b\",c");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "c");
}

TEST(CsvParseTest, EscapedQuotes) {
  const auto fields = parse_csv_line("\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(CsvParseTest, EmptyFields) {
  const auto fields = parse_csv_line(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(CsvParseTest, DocumentSkipsBlankLinesAndCarriageReturns) {
  const auto rows = parse_csv("a,b\r\n\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
  EXPECT_EQ(rows[1][0], "c");
}

TEST(CsvRoundTripTest, WriterOutputParsesBack) {
  std::ostringstream out;
  CsvWriter writer(out);
  const std::vector<std::string> original = {"plain", "with,comma",
                                             "with \"quote\"", ""};
  writer.write_row(original);
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], original);
}

}  // namespace
}  // namespace eta2
