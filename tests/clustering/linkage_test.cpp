#include "clustering/linkage.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace eta2::clustering {
namespace {

SymmetricMatrix from_points(const std::vector<double>& points) {
  SymmetricMatrix m(points.size());
  for (std::size_t i = 1; i < points.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      m.set(i, j, std::fabs(points[i] - points[j]));
    }
  }
  return m;
}

std::size_t cluster_count(const std::vector<std::size_t>& labels) {
  return std::set<std::size_t>(labels.begin(), labels.end()).size();
}

TEST(SymmetricMatrixTest, StoresSymmetrically) {
  SymmetricMatrix m(4);
  m.set(1, 3, 2.5);
  EXPECT_DOUBLE_EQ(m.at(1, 3), 2.5);
  EXPECT_DOUBLE_EQ(m.at(3, 1), 2.5);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 0.0);
}

TEST(SymmetricMatrixTest, RejectsBadIndices) {
  SymmetricMatrix m(3);
  EXPECT_THROW(m.at(0, 3), std::invalid_argument);
  EXPECT_THROW(m.set(1, 1, 0.0), std::invalid_argument);
}

TEST(UpgmaTest, TrivialSizes) {
  EXPECT_TRUE(upgma_dendrogram(SymmetricMatrix(0), {}).empty());
  EXPECT_TRUE(upgma_dendrogram(SymmetricMatrix(1), {1.0}).empty());
}

TEST(UpgmaTest, TwoPoints) {
  const auto steps = upgma_dendrogram(from_points({0.0, 3.0}), {1.0, 1.0});
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].a, 0u);
  EXPECT_EQ(steps[0].b, 1u);
  EXPECT_DOUBLE_EQ(steps[0].distance, 3.0);
}

TEST(UpgmaTest, ClosestPairMergesFirst) {
  // Points 0, 1, 10: the 0-1 pair merges first at distance 1; then the
  // combined cluster merges with 10 at the average distance (10+9)/2.
  const auto steps = upgma_dendrogram(from_points({0.0, 1.0, 10.0}),
                                      {1.0, 1.0, 1.0});
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_DOUBLE_EQ(steps[0].distance, 1.0);
  EXPECT_EQ(steps[0].a, 0u);
  EXPECT_EQ(steps[0].b, 1u);
  EXPECT_DOUBLE_EQ(steps[1].distance, 9.5);
  // Second merge joins the new cluster (id 3) with point 2.
  EXPECT_EQ(steps[1].a, 2u);
  EXPECT_EQ(steps[1].b, 3u);
}

TEST(UpgmaTest, WeightedSizesAffectLinkage) {
  // Cluster 0 carries size 3: average distance to it keeps weight 3.
  SymmetricMatrix m(3);
  m.set(0, 1, 2.0);
  m.set(0, 2, 4.0);
  m.set(1, 2, 1.0);
  const auto steps = upgma_dendrogram(m, {3.0, 1.0, 1.0});
  ASSERT_EQ(steps.size(), 2u);
  // 1 and 2 merge first at distance 1; the merged cluster is at
  // (3·2 + 3·4)/(3·1+3·1) = 3 from cluster 0 per Lance-Williams:
  // (s1·d(0,1)+s2·d(0,2))/(s1+s2) = (1·2+1·4)/2 = 3.
  EXPECT_DOUBLE_EQ(steps[1].distance, 3.0);
}

TEST(UpgmaTest, HeightsAreMonotoneAlongPaths) {
  Rng rng(3);
  std::vector<double> points;
  for (int i = 0; i < 40; ++i) points.push_back(rng.uniform(0.0, 100.0));
  const auto steps = upgma_dendrogram(from_points(points),
                                      std::vector<double>(points.size(), 1.0));
  ASSERT_EQ(steps.size(), points.size() - 1);
  // Child node k (id n + k) must merge at height <= its parent's height.
  const std::size_t n = points.size();
  std::vector<double> node_height(2 * n - 1, 0.0);
  for (std::size_t k = 0; k < steps.size(); ++k) {
    node_height[n + k] = steps[k].distance;
    EXPECT_LE(node_height[steps[k].a], steps[k].distance + 1e-12);
    EXPECT_LE(node_height[steps[k].b], steps[k].distance + 1e-12);
  }
}

TEST(UpgmaTest, RejectsBadSizes) {
  EXPECT_THROW(upgma_dendrogram(SymmetricMatrix(2), {1.0}),
               std::invalid_argument);
  EXPECT_THROW(upgma_dendrogram(SymmetricMatrix(2), {1.0, 0.0}),
               std::invalid_argument);
}

TEST(CutTest, ThresholdZeroKeepsSingletons) {
  const auto labels = average_linkage_cluster(from_points({0.0, 0.0, 0.0}), 0.0);
  EXPECT_EQ(cluster_count(labels), 3u);
}

TEST(CutTest, LargeThresholdMergesAll) {
  const auto labels =
      average_linkage_cluster(from_points({0.0, 1.0, 5.0, 9.0}), 1e9);
  EXPECT_EQ(cluster_count(labels), 1u);
}

TEST(CutTest, RecoverseparatedGroups) {
  // Two tight groups far apart.
  const std::vector<double> points = {0.0, 0.1, 0.2, 100.0, 100.1, 100.2};
  const auto labels = average_linkage_cluster(from_points(points), 10.0);
  EXPECT_EQ(cluster_count(labels), 2u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(CutTest, ThresholdIsExclusive) {
  // Merge happens only when distance < threshold (paper: terminate when the
  // closest distance is equal to or larger than γ·d*).
  const auto at_threshold = average_linkage_cluster(from_points({0.0, 2.0}), 2.0);
  EXPECT_EQ(cluster_count(at_threshold), 2u);
  const auto above = average_linkage_cluster(from_points({0.0, 2.0}), 2.001);
  EXPECT_EQ(cluster_count(above), 1u);
}

TEST(CutTest, LabelsAreFirstAppearanceOrdered) {
  const std::vector<double> points = {0.0, 100.0, 0.1, 100.1};
  const auto labels = average_linkage_cluster(from_points(points), 10.0);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[2], 0u);
  EXPECT_EQ(labels[3], 1u);
}

// Property: the greedy closest-pair semantics means every within-cluster
// merge distance is below the threshold, and the final between-cluster
// average distances are >= threshold.
class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, BetweenClusterAverageAboveThreshold) {
  const double threshold = GetParam();
  Rng rng(17);
  std::vector<double> points;
  for (int i = 0; i < 30; ++i) points.push_back(rng.uniform(0.0, 50.0));
  const auto matrix = from_points(points);
  const auto labels = average_linkage_cluster(matrix, threshold);
  const std::size_t k = cluster_count(labels);
  // Average pairwise distance between every pair of final clusters.
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a + 1; b < k; ++b) {
      double sum = 0.0;
      int count = 0;
      for (std::size_t i = 0; i < points.size(); ++i) {
        for (std::size_t j = 0; j < points.size(); ++j) {
          if (labels[i] == a && labels[j] == b) {
            sum += matrix.at(i, j);
            ++count;
          }
        }
      }
      ASSERT_GT(count, 0);
      EXPECT_GE(sum / count, threshold - 1e-9)
          << "clusters " << a << "," << b << " closer than threshold";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0, 25.0));

}  // namespace
}  // namespace eta2::clustering
