// Oracle test: the NN-chain UPGMA implementation must produce exactly the
// clustering of the paper's literal algorithm — "repeatedly merge the
// closest pair of clusters (average linkage) until the closest distance is
// >= the threshold" — implemented here naively in O(n³).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "clustering/linkage.h"
#include "common/rng.h"

namespace eta2::clustering {
namespace {

// Naive greedy closest-pair average-linkage clustering.
std::vector<std::size_t> naive_greedy_cluster(const SymmetricMatrix& dist,
                                              double threshold) {
  const std::size_t n = dist.size();
  std::vector<std::vector<std::size_t>> clusters;
  for (std::size_t i = 0; i < n; ++i) clusters.push_back({i});

  auto linkage = [&](const std::vector<std::size_t>& a,
                     const std::vector<std::size_t>& b) {
    double sum = 0.0;
    for (const std::size_t p : a) {
      for (const std::size_t q : b) sum += dist.at(p, q);
    }
    return sum / (static_cast<double>(a.size()) * static_cast<double>(b.size()));
  };

  while (clusters.size() > 1) {
    double best = 1e300;
    std::size_t best_a = 0;
    std::size_t best_b = 0;
    for (std::size_t a = 0; a < clusters.size(); ++a) {
      for (std::size_t b = a + 1; b < clusters.size(); ++b) {
        const double d = linkage(clusters[a], clusters[b]);
        if (d < best) {
          best = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best >= threshold) break;
    clusters[best_a].insert(clusters[best_a].end(), clusters[best_b].begin(),
                            clusters[best_b].end());
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(best_b));
  }

  std::vector<std::size_t> labels(n, 0);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (const std::size_t p : clusters[c]) labels[p] = c;
  }
  return labels;
}

// Partitions are equal up to label renaming.
bool same_partition(const std::vector<std::size_t>& a,
                    const std::vector<std::size_t>& b) {
  if (a.size() != b.size()) return false;
  std::map<std::size_t, std::size_t> a_to_b;
  std::map<std::size_t, std::size_t> b_to_a;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto [it1, ins1] = a_to_b.try_emplace(a[i], b[i]);
    if (it1->second != b[i]) return false;
    const auto [it2, ins2] = b_to_a.try_emplace(b[i], a[i]);
    if (it2->second != a[i]) return false;
  }
  return true;
}

class UpgmaOracleSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(UpgmaOracleSweep, MatchesNaiveGreedy) {
  const auto [seed, threshold_frac] = GetParam();
  Rng rng(seed);
  const std::size_t n = 24;
  SymmetricMatrix dist(n);
  double max_dist = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double d = rng.uniform(0.1, 10.0);
      dist.set(i, j, d);
      max_dist = std::max(max_dist, d);
    }
  }
  const double threshold = threshold_frac * max_dist;
  const auto fast = average_linkage_cluster(dist, threshold);
  const auto naive = naive_greedy_cluster(dist, threshold);
  EXPECT_TRUE(same_partition(fast, naive))
      << "seed=" << seed << " threshold=" << threshold;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, UpgmaOracleSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6),
                       ::testing::Values(0.2, 0.5, 0.8, 1.01)));

}  // namespace
}  // namespace eta2::clustering
