#include "clustering/dynamic_clusterer.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "text/embedder.h"
#include "text/pairword.h"

namespace eta2::clustering {
namespace {

// 2-block vectors (query/target halves) placed on a line; task_distance
// between [x,0] and [y,0] blocks is ½(x−y)² per half.
text::Embedding point(double q, double t) { return {q, 0.0, t, 0.0}; }

TEST(DynamicClustererTest, RejectsBadGamma) {
  EXPECT_THROW(DynamicClusterer(-0.1), std::invalid_argument);
  EXPECT_THROW(DynamicClusterer(1.1), std::invalid_argument);
}

TEST(DynamicClustererTest, EmptyBatchIsNoop) {
  DynamicClusterer c(0.5);
  const ClusterUpdate u = c.add_tasks({});
  EXPECT_TRUE(u.assignments.empty());
  EXPECT_EQ(c.task_count(), 0u);
}

TEST(DynamicClustererTest, WarmupClustersTwoGroups) {
  DynamicClusterer c(0.5);
  const std::vector<text::Embedding> batch = {
      point(0.0, 0.0), point(0.1, 0.0), point(10.0, 10.0), point(10.1, 10.0)};
  const ClusterUpdate u = c.add_tasks(batch);
  ASSERT_EQ(u.assignments.size(), 4u);
  EXPECT_EQ(u.assignments[0], u.assignments[1]);
  EXPECT_EQ(u.assignments[2], u.assignments[3]);
  EXPECT_NE(u.assignments[0], u.assignments[2]);
  EXPECT_EQ(u.new_domains.size(), 2u);
  EXPECT_TRUE(u.merges.empty());
  EXPECT_EQ(c.domain_count(), 2u);
}

TEST(DynamicClustererTest, NewTaskJoinsExistingDomain) {
  DynamicClusterer c(0.5);
  const auto first = c.add_tasks(std::vector<text::Embedding>{
      point(0.0, 0.0), point(0.1, 0.0), point(10.0, 10.0), point(10.1, 10.0)});
  const DomainId group_a = first.assignments[0];

  const auto second =
      c.add_tasks(std::vector<text::Embedding>{point(0.05, 0.0)});
  ASSERT_EQ(second.assignments.size(), 1u);
  EXPECT_EQ(second.assignments[0], group_a);
  EXPECT_TRUE(second.new_domains.empty());
  EXPECT_TRUE(second.merges.empty());
  EXPECT_EQ(c.domain_count(), 2u);
}

TEST(DynamicClustererTest, DistantTaskCreatesNewDomain) {
  DynamicClusterer c(0.3);
  c.add_tasks(std::vector<text::Embedding>{
      point(0.0, 0.0), point(0.1, 0.0), point(10.0, 10.0), point(10.1, 10.0)});
  const auto update =
      c.add_tasks(std::vector<text::Embedding>{point(-50.0, -50.0)});
  // The far-away task forms its own domain. Note that its arrival also
  // grows d* (and with it the merge threshold γ·d*), which may legitimately
  // merge the two original domains — the paper's dynamic semantics.
  ASSERT_EQ(update.new_domains.size(), 1u);
  EXPECT_EQ(update.assignments[0], update.new_domains[0]);
  EXPECT_GE(c.domain_count(), 2u);
  EXPECT_LE(c.domain_count(), 3u);
}

TEST(DynamicClustererTest, BridgingTasksMergeDomains) {
  // Two groups just over the threshold apart; adding tasks between them
  // pulls the average distance below γ·d* and the domains merge.
  DynamicClusterer c(0.9);
  const auto first = c.add_tasks(std::vector<text::Embedding>{
      point(0.0, 0.0), point(2.0, 0.0), point(100.0, 0.0)});
  // d* is dominated by the 0-100 distance; groups {0,2} and {100} exist.
  const std::size_t before = c.domain_count();
  const auto update = c.add_tasks(std::vector<text::Embedding>{
      point(40.0, 0.0), point(50.0, 0.0), point(60.0, 0.0)});
  // With bridges the structure flattens; domains can only shrink or stay.
  EXPECT_LE(c.domain_count(), before + 1);
  // All reported merges reference previously live domains.
  for (const DomainMerge& m : update.merges) {
    EXPECT_NE(m.kept, m.absorbed);
  }
}

TEST(DynamicClustererTest, DomainOfTracksAllTasks) {
  DynamicClusterer c(0.5);
  c.add_tasks(std::vector<text::Embedding>{point(0.0, 0.0), point(9.0, 9.0)});
  c.add_tasks(std::vector<text::Embedding>{point(0.1, 0.0)});
  EXPECT_EQ(c.task_count(), 3u);
  EXPECT_EQ(c.domain_of(0), c.domain_of(2));
  EXPECT_NE(c.domain_of(0), c.domain_of(1));
  EXPECT_THROW(c.domain_of(3), std::invalid_argument);
}

TEST(DynamicClustererTest, GammaZeroKeepsEveryTaskSeparate) {
  DynamicClusterer c(0.0);
  const auto u = c.add_tasks(std::vector<text::Embedding>{
      point(0.0, 0.0), point(0.0, 0.0), point(0.1, 0.0)});
  std::set<DomainId> distinct(u.assignments.begin(), u.assignments.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(DynamicClustererTest, GammaOneMergesEverything) {
  DynamicClusterer c(1.0);
  const auto u = c.add_tasks(std::vector<text::Embedding>{
      point(0.0, 0.0), point(5.0, 5.0), point(10.0, 10.0)});
  std::set<DomainId> distinct(u.assignments.begin(), u.assignments.end());
  // The largest pairwise distance never merges (threshold is exclusive),
  // so at least two domains can survive, but near-duplicates must merge.
  EXPECT_LE(distinct.size(), 2u);
}

TEST(DynamicClustererTest, RejectsDimensionMismatch) {
  DynamicClusterer c(0.5);
  c.add_tasks(std::vector<text::Embedding>{point(0.0, 0.0)});
  EXPECT_THROW(
      c.add_tasks(std::vector<text::Embedding>{{1.0, 2.0}}),
      std::invalid_argument);
}

TEST(DynamicClustererTest, DstarGrowsMonotonically) {
  DynamicClusterer c(0.5);
  c.add_tasks(std::vector<text::Embedding>{point(0.0, 0.0), point(1.0, 0.0)});
  const double d1 = c.dstar();
  c.add_tasks(std::vector<text::Embedding>{point(100.0, 0.0)});
  EXPECT_GT(c.dstar(), d1);
  c.add_tasks(std::vector<text::Embedding>{point(0.5, 0.0)});
  EXPECT_GE(c.dstar(), d1);
}

// End-to-end: cluster semantic vectors of topic-coherent descriptions using
// the hash embedder (tasks sharing words cluster together).
TEST(DynamicClustererTest, ClustersDescriptionsSharingWords) {
  const text::HashEmbedder embedder(32);
  const std::vector<std::string> descriptions = {
      "noise near the park",     "noise near the reservoir",
      "noise around the park",   "salary at the bank",
      "salary of the brokerage", "salary at the exchange",
  };
  std::vector<text::Embedding> vectors;
  for (const auto& d : descriptions) {
    vectors.push_back(text::semantic_vector(d, embedder));
  }
  DynamicClusterer c(0.6);
  const auto u = c.add_tasks(vectors);
  EXPECT_EQ(u.assignments[0], u.assignments[1]);
  EXPECT_EQ(u.assignments[0], u.assignments[2]);
  EXPECT_EQ(u.assignments[3], u.assignments[4]);
  EXPECT_EQ(u.assignments[3], u.assignments[5]);
  EXPECT_NE(u.assignments[0], u.assignments[3]);
}

}  // namespace
}  // namespace eta2::clustering
