#include "clustering/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace eta2::clustering {
namespace {

const std::vector<std::size_t> kTruth = {0, 0, 0, 1, 1, 1, 2, 2, 2};

TEST(PurityTest, PerfectClustering) {
  const std::vector<std::size_t> predicted = {5, 5, 5, 7, 7, 7, 9, 9, 9};
  EXPECT_DOUBLE_EQ(purity(predicted, kTruth), 1.0);
}

TEST(PurityTest, SingleClusterGetsMajorityShare) {
  const std::vector<std::size_t> predicted(9, 0);
  EXPECT_DOUBLE_EQ(purity(predicted, kTruth), 3.0 / 9.0);
}

TEST(PurityTest, AllSingletonsIsTriviallyPure) {
  std::vector<std::size_t> predicted(9);
  for (std::size_t i = 0; i < 9; ++i) predicted[i] = i;
  EXPECT_DOUBLE_EQ(purity(predicted, kTruth), 1.0);
}

TEST(PurityTest, PartialMixture) {
  // One cluster holds {0,0,1}, another {1,1,0}, third {2,2,2}.
  const std::vector<std::size_t> predicted = {0, 0, 1, 0, 1, 1, 2, 2, 2};
  EXPECT_DOUBLE_EQ(purity(predicted, kTruth), (2.0 + 2.0 + 3.0) / 9.0);
}

TEST(PurityTest, RejectsBadInputs) {
  EXPECT_THROW(purity({}, {}), std::invalid_argument);
  const std::vector<std::size_t> a = {0, 1};
  const std::vector<std::size_t> b = {0};
  EXPECT_THROW(purity(a, b), std::invalid_argument);
}

TEST(AriTest, IdenticalPartitionsScoreOne) {
  EXPECT_DOUBLE_EQ(adjusted_rand_index(kTruth, kTruth), 1.0);
  // Label names are irrelevant.
  const std::vector<std::size_t> renamed = {4, 4, 4, 9, 9, 9, 1, 1, 1};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(renamed, kTruth), 1.0);
}

TEST(AriTest, SingleClusterScoresZeroAgainstStructure) {
  const std::vector<std::size_t> predicted(9, 0);
  EXPECT_NEAR(adjusted_rand_index(predicted, kTruth), 0.0, 1e-12);
}

TEST(AriTest, RandomishPartitionScoresLow) {
  const std::vector<std::size_t> predicted = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  EXPECT_LT(adjusted_rand_index(predicted, kTruth), 0.1);
}

TEST(AriTest, BetterPartitionScoresHigher) {
  const std::vector<std::size_t> close = {0, 0, 1, 1, 1, 1, 2, 2, 2};
  const std::vector<std::size_t> far = {0, 1, 2, 1, 2, 0, 2, 0, 1};
  EXPECT_GT(adjusted_rand_index(close, kTruth),
            adjusted_rand_index(far, kTruth));
}

TEST(AriTest, BothTrivialPartitionsAgree) {
  const std::vector<std::size_t> a(5, 0);
  const std::vector<std::size_t> b(5, 3);
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), 1.0);
}

TEST(ClusterCountTest, CountsDistinctLabels) {
  EXPECT_EQ(cluster_count(kTruth), 3u);
  const std::vector<std::size_t> empty;
  EXPECT_EQ(cluster_count(empty), 0u);
}

}  // namespace
}  // namespace eta2::clustering
