#include "stats/confidence.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "stats/normal.h"

namespace eta2::stats {
namespace {

TEST(FisherInformationTest, PaperEq23) {
  const std::vector<double> u{1.0, 2.0};
  // I(μ) = Σu²/σ² = (1+4)/4
  EXPECT_DOUBLE_EQ(truth_fisher_information(u, 2.0), 1.25);
}

TEST(FisherInformationTest, ZeroWithoutObservers) {
  EXPECT_DOUBLE_EQ(truth_fisher_information({}, 1.0), 0.0);
}

TEST(FisherInformationTest, RejectsBadInputs) {
  const std::vector<double> u{1.0};
  EXPECT_THROW(truth_fisher_information(u, 0.0), std::invalid_argument);
  const std::vector<double> bad{-1.0};
  EXPECT_THROW(truth_fisher_information(bad, 1.0), std::invalid_argument);
}

TEST(ConfidenceIntervalTest, PaperEq24) {
  const std::vector<double> u{1.0, 1.0, 1.0, 1.0};
  const double sigma = 2.0;
  const Interval ci = truth_confidence_interval(10.0, u, sigma, 0.05);
  // half width = z * σ / sqrt(Σu²) = 1.96 * 2 / 2
  const double expected_half = z_critical(0.05) * sigma / 2.0;
  EXPECT_NEAR(ci.half_width(), expected_half, 1e-9);
  EXPECT_NEAR(ci.lower, 10.0 - expected_half, 1e-9);
  EXPECT_NEAR(ci.upper, 10.0 + expected_half, 1e-9);
  EXPECT_TRUE(ci.contains(10.0));
  EXPECT_FALSE(ci.contains(10.0 + expected_half + 0.001));
}

TEST(ConfidenceIntervalTest, ShrinksWithMoreObservers) {
  const double sigma = 1.0;
  double prev = 1e9;
  for (int n = 1; n <= 20; ++n) {
    const std::vector<double> u(n, 1.5);
    const Interval ci = truth_confidence_interval(0.0, u, sigma, 0.05);
    EXPECT_LT(ci.length(), prev);
    prev = ci.length();
  }
}

TEST(ConfidenceIntervalTest, RejectsAllZeroExpertise) {
  const std::vector<double> u{0.0, 0.0};
  EXPECT_THROW(truth_confidence_interval(0.0, u, 1.0, 0.05),
               std::invalid_argument);
}

TEST(QualityRequirementTest, ThresholdIndependentOfSigma) {
  // The test z/sqrt(Σu²) < ε̄ cancels σ: check both σ values agree.
  const std::vector<double> u(16, 1.0);  // Σu² = 16 => z/4 = 0.49 < 0.5
  EXPECT_TRUE(quality_requirement_met(u, 1.0, 0.5, 0.05));
  EXPECT_TRUE(quality_requirement_met(u, 100.0, 0.5, 0.05));
  const std::vector<double> few(15, 1.0);  // z/sqrt(15) = 0.506 > 0.5
  EXPECT_FALSE(quality_requirement_met(few, 1.0, 0.5, 0.05));
  EXPECT_FALSE(quality_requirement_met(few, 100.0, 0.5, 0.05));
}

TEST(QualityRequirementTest, FailsWithoutObservers) {
  EXPECT_FALSE(quality_requirement_met({}, 1.0, 0.5, 0.05));
}

TEST(QualityRequirementTest, CoverageIsCalibrated) {
  // Monte-Carlo check of Eq. 24: the 95% CI for the weighted-mean estimator
  // should cover the true μ in ~95% of trials.
  Rng rng(7);
  const double mu = 5.0;
  const double sigma = 2.0;
  const std::vector<double> u{0.8, 1.2, 2.0, 0.5, 1.5};
  int covered = 0;
  constexpr int kTrials = 4000;
  for (int t = 0; t < kTrials; ++t) {
    double num = 0.0;
    double den = 0.0;
    for (const double ui : u) {
      const double x = rng.normal(mu, sigma / ui);
      num += ui * ui * x;
      den += ui * ui;
    }
    const double estimate = num / den;
    const Interval ci = truth_confidence_interval(estimate, u, sigma, 0.05);
    if (ci.contains(mu)) ++covered;
  }
  EXPECT_NEAR(static_cast<double>(covered) / kTrials, 0.95, 0.015);
}

// Property sweep over confidence levels: smaller α → wider interval.
class ConfidenceWidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(ConfidenceWidthSweep, WidthMatchesZCritical) {
  const double alpha = GetParam();
  const std::vector<double> u{1.0, 2.0, 0.5};
  const double sigma = 3.0;
  const Interval ci = truth_confidence_interval(1.0, u, sigma, alpha);
  const double info = truth_fisher_information(u, sigma);
  EXPECT_NEAR(ci.half_width(), z_critical(alpha) / std::sqrt(info), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ConfidenceWidthSweep,
                         ::testing::Values(0.2, 0.1, 0.05, 0.02, 0.01));

}  // namespace
}  // namespace eta2::stats
