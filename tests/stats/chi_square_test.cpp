#include "stats/chi_square.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace eta2::stats {
namespace {

TEST(RegularizedGammaTest, KnownValues) {
  // P(1, x) = 1 − e^{−x}
  EXPECT_NEAR(regularized_gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(regularized_gamma_p(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-12);
  // P(0.5, x) = erf(sqrt(x))
  EXPECT_NEAR(regularized_gamma_p(0.5, 1.0), std::erf(1.0), 1e-12);
  EXPECT_NEAR(regularized_gamma_p(0.5, 4.0), std::erf(2.0), 1e-12);
}

TEST(RegularizedGammaTest, Boundaries) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_NEAR(regularized_gamma_p(2.0, 1000.0), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, RejectsBadArguments) {
  EXPECT_THROW(regularized_gamma_p(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(regularized_gamma_p(1.0, -1.0), std::invalid_argument);
}

TEST(ChiSquareCdfTest, KnownValues) {
  // χ²(k=2) CDF = 1 − e^{−x/2}
  EXPECT_NEAR(chi_square_cdf(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-12);
  // Median of χ²(1) ≈ 0.4549
  EXPECT_NEAR(chi_square_cdf(0.454936, 1.0), 0.5, 1e-4);
  // 95th percentile of χ²(3) ≈ 7.8147
  EXPECT_NEAR(chi_square_cdf(7.814728, 3.0), 0.95, 1e-5);
}

TEST(ChiSquareCdfTest, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x < 30.0; x += 0.25) {
    const double c = chi_square_cdf(x, 4.0);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(ChiSquarePvalueTest, ComplementsCdf) {
  EXPECT_NEAR(chi_square_pvalue(7.814728, 3.0), 0.05, 1e-5);
}

TEST(NormalityGofTest, AcceptsNormalSamples) {
  Rng rng(11);
  int rejected = 0;
  constexpr int kSets = 200;
  for (int s = 0; s < kSets; ++s) {
    std::vector<double> obs;
    for (int i = 0; i < 40; ++i) obs.push_back(rng.normal(5.0, 2.0));
    const GofResult r = normality_gof_test(obs);
    ASSERT_TRUE(r.valid);
    if (r.p_value < 0.05) ++rejected;
  }
  // At α=0.05 roughly 5% of truly normal sets should be rejected.
  EXPECT_LT(rejected, kSets / 5);
}

TEST(NormalityGofTest, RejectsStronglyNonNormalSamples) {
  Rng rng(13);
  int rejected = 0;
  constexpr int kSets = 100;
  for (int s = 0; s < kSets; ++s) {
    std::vector<double> obs;
    for (int i = 0; i < 60; ++i) {
      // Extreme bimodal: two point-like clusters.
      obs.push_back(rng.bernoulli(0.5) ? rng.normal(-10.0, 0.1)
                                       : rng.normal(10.0, 0.1));
    }
    const GofResult r = normality_gof_test(obs);
    ASSERT_TRUE(r.valid);
    if (r.p_value < 0.05) ++rejected;
  }
  EXPECT_GT(rejected, kSets * 5 / 10);
}

TEST(NormalityGofTest, InvalidForTinySamples) {
  const std::vector<double> few{1.0, 2.0, 3.0};
  EXPECT_FALSE(normality_gof_test(few).valid);
}

TEST(NormalityGofTest, InvalidForZeroVariance) {
  const std::vector<double> constant(20, 4.2);
  EXPECT_FALSE(normality_gof_test(constant).valid);
}

TEST(NonRejectionRateTest, CountsOnlyValidResults) {
  std::vector<GofResult> results(4);
  results[0].valid = true;
  results[0].p_value = 0.5;   // pass at α=0.1
  results[1].valid = true;
  results[1].p_value = 0.04;  // fail at α=0.1
  results[2].valid = false;   // skipped
  results[3].valid = true;
  results[3].p_value = 0.2;   // pass
  EXPECT_NEAR(non_rejection_rate(results, 0.1), 2.0 / 3.0, 1e-12);
}

TEST(NonRejectionRateTest, EmptyInputYieldsZero) {
  EXPECT_DOUBLE_EQ(non_rejection_rate({}, 0.05), 0.0);
}

TEST(NonRejectionRateTest, RejectsBadAlpha) {
  std::vector<GofResult> results(1);
  EXPECT_THROW(non_rejection_rate(results, 0.0), std::invalid_argument);
  EXPECT_THROW(non_rejection_rate(results, 1.0), std::invalid_argument);
}

// Property sweep: at stricter significance levels (smaller α), the
// non-rejection rate can only grow — the paper's Table 1 trend.
TEST(NonRejectionRateTest, MonotoneInAlpha) {
  Rng rng(17);
  std::vector<GofResult> results;
  for (int s = 0; s < 150; ++s) {
    std::vector<double> obs;
    for (int i = 0; i < 30; ++i) obs.push_back(rng.normal());
    results.push_back(normality_gof_test(obs));
  }
  const double r50 = non_rejection_rate(results, 0.5);
  const double r25 = non_rejection_rate(results, 0.25);
  const double r10 = non_rejection_rate(results, 0.1);
  const double r05 = non_rejection_rate(results, 0.05);
  EXPECT_LE(r50, r25);
  EXPECT_LE(r25, r10);
  EXPECT_LE(r10, r05);
}

}  // namespace
}  // namespace eta2::stats
