#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include <stdexcept>

#include "common/rng.h"
#include "stats/normal.h"

namespace eta2::stats {
namespace {

TEST(HistogramTest, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.outliers(), 0u);
}

TEST(HistogramTest, OutliersCounted) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(std::nan(""));
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.outliers(), 3u);
}

TEST(HistogramTest, BinGeometry) {
  Histogram h(-2.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_left(0), -2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), -1.5);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 1.5);
}

TEST(HistogramTest, DensityIntegratesToOneWithoutOutliers) {
  Histogram h(0.0, 1.0, 20);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform01());
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    integral += h.density(b) * h.bin_width();
  }
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(HistogramTest, NormalSamplesMatchPdf) {
  // The Fig. 2 property: a histogram of standard-normal draws matches φ.
  Histogram h(-4.0, 4.0, 32);
  Rng rng(5);
  for (int i = 0; i < 400000; ++i) h.add(rng.normal());
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    const double x = h.bin_center(b);
    EXPECT_NEAR(h.density(b), normal_pdf(x), 0.01) << "bin at " << x;
  }
}

TEST(HistogramTest, EmptyHistogramHasZeroDensity) {
  Histogram h(0.0, 1.0, 5);
  EXPECT_DOUBLE_EQ(h.density(0), 0.0);
  EXPECT_EQ(h.densities().size(), 5u);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, RejectsBadBinAccess) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_THROW(h.count(3), std::invalid_argument);
  EXPECT_THROW(h.density(3), std::invalid_argument);
  EXPECT_THROW(h.bin_left(3), std::invalid_argument);
}

}  // namespace
}  // namespace eta2::stats
