#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace eta2::stats {
namespace {

const std::vector<double> kSample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(MeanTest, KnownValue) { EXPECT_DOUBLE_EQ(mean(kSample), 5.0); }

TEST(MeanTest, SingleElement) {
  const std::vector<double> v{3.5};
  EXPECT_DOUBLE_EQ(mean(v), 3.5);
}

TEST(MeanTest, RejectsEmpty) {
  EXPECT_THROW(mean(std::vector<double>{}), std::invalid_argument);
}

TEST(VarianceTest, PopulationVariance) {
  EXPECT_DOUBLE_EQ(variance(kSample), 4.0);
  EXPECT_DOUBLE_EQ(stddev(kSample), 2.0);
}

TEST(VarianceTest, SampleVarianceUsesBesselCorrection) {
  EXPECT_DOUBLE_EQ(sample_variance(kSample), 32.0 / 7.0);
}

TEST(VarianceTest, SampleVarianceNeedsTwo) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(sample_variance(v), std::invalid_argument);
}

TEST(VarianceTest, ConstantDataHasZeroVariance) {
  const std::vector<double> v(10, 3.0);
  EXPECT_DOUBLE_EQ(variance(v), 0.0);
  EXPECT_DOUBLE_EQ(sample_variance(v), 0.0);
}

TEST(QuantileTest, MedianOfOddAndEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(QuantileTest, Extremes) {
  EXPECT_DOUBLE_EQ(quantile(kSample, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(kSample, 1.0), 9.0);
}

TEST(QuantileTest, LinearInterpolation) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
}

TEST(QuantileTest, RejectsBadInputs) {
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(kSample, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(kSample, 1.1), std::invalid_argument);
}

TEST(MinMaxTest, Values) {
  EXPECT_DOUBLE_EQ(min_value(kSample), 2.0);
  EXPECT_DOUBLE_EQ(max_value(kSample), 9.0);
}

TEST(BoxStatsTest, FiveNumberSummary) {
  const BoxStats b = box_stats(kSample);
  EXPECT_DOUBLE_EQ(b.minimum, 2.0);
  EXPECT_DOUBLE_EQ(b.median, 4.5);
  EXPECT_DOUBLE_EQ(b.maximum, 9.0);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
}

TEST(MeanStderrTest, KnownValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const MeanStderr ms = mean_stderr(v);
  EXPECT_DOUBLE_EQ(ms.mean, 2.5);
  EXPECT_EQ(ms.n, 4u);
  EXPECT_NEAR(ms.stderr_, 0.6454972243679028, 1e-12);
}

TEST(MeanStderrTest, SingleValueHasZeroStderr) {
  const std::vector<double> v{5.0};
  const MeanStderr ms = mean_stderr(v);
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_DOUBLE_EQ(ms.stderr_, 0.0);
}

TEST(EcdfTest, StepFunction) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> points{0.5, 1.0, 2.5, 4.0, 9.0};
  const auto e = ecdf(v, points);
  ASSERT_EQ(e.size(), 5u);
  EXPECT_DOUBLE_EQ(e[0], 0.0);
  EXPECT_DOUBLE_EQ(e[1], 0.25);
  EXPECT_DOUBLE_EQ(e[2], 0.5);
  EXPECT_DOUBLE_EQ(e[3], 1.0);
  EXPECT_DOUBLE_EQ(e[4], 1.0);
}

// Property sweep: quantile is monotone in q for arbitrary data.
class QuantileMonotoneSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotoneSweep, MonotoneInQ) {
  std::vector<double> data;
  // Deterministic pseudo-data parameterized by the seed.
  unsigned x = static_cast<unsigned>(GetParam()) * 2654435761u + 1;
  for (int i = 0; i < 50; ++i) {
    x = x * 1664525u + 1013904223u;
    data.push_back(static_cast<double>(x % 1000) / 10.0);
  }
  double prev = quantile(data, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(data, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotoneSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace eta2::stats
