#include "stats/normal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace eta2::stats {
namespace {

TEST(NormalPdfTest, StandardValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-15);
}

TEST(NormalPdfTest, ScaledDensityIntegratesConsistently) {
  // f(x; m, s) = f((x-m)/s) / s
  EXPECT_NEAR(normal_pdf(3.0, 3.0, 2.0), normal_pdf(0.0) / 2.0, 1e-12);
  EXPECT_NEAR(normal_pdf(5.0, 3.0, 2.0), normal_pdf(1.0) / 2.0, 1e-12);
}

TEST(NormalPdfTest, RejectsNonPositiveStddev) {
  EXPECT_THROW(normal_pdf(0.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(normal_pdf(0.0, 0.0, -1.0), std::invalid_argument);
}

TEST(NormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.9750021048517795, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.96), 1.0 - 0.9750021048517795, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-9);
}

TEST(NormalCdfTest, Monotone) {
  double prev = 0.0;
  for (double x = -6.0; x <= 6.0; x += 0.05) {
    const double c = normal_cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(NormalQuantileTest, InvertsCdf) {
  for (double p = 0.001; p < 1.0; p += 0.0217) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantileTest, TailAccuracy) {
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(1e-6), -4.753424308822899, 1e-6);
}

TEST(NormalQuantileTest, RejectsOutOfRange) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(-0.5), std::invalid_argument);
}

TEST(ZCriticalTest, StandardLevels) {
  EXPECT_NEAR(z_critical(0.05), 1.959963984540054, 1e-9);
  EXPECT_NEAR(z_critical(0.1), 1.6448536269514722, 1e-9);
  EXPECT_NEAR(z_critical(0.01), 2.5758293035489004, 1e-8);
}

TEST(AccuracyProbabilityTest, PaperEq11) {
  // p = 2Φ(εu) − 1
  EXPECT_NEAR(accuracy_probability(0.0, 0.1), 0.0, 1e-15);
  EXPECT_NEAR(accuracy_probability(1.0, 0.1),
              2.0 * normal_cdf(0.1) - 1.0, 1e-12);
  EXPECT_NEAR(accuracy_probability(19.6, 0.1),
              2.0 * normal_cdf(1.96) - 1.0, 1e-12);
}

TEST(AccuracyProbabilityTest, MonotoneInExpertise) {
  double prev = -1.0;
  for (double u = 0.0; u <= 30.0; u += 0.5) {
    const double p = accuracy_probability(u, 0.1);
    EXPECT_GT(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, 1.0);
    prev = p;
  }
}

TEST(AccuracyProbabilityTest, RejectsNegativeInputs) {
  EXPECT_THROW(accuracy_probability(-1.0, 0.1), std::invalid_argument);
  EXPECT_THROW(accuracy_probability(1.0, -0.1), std::invalid_argument);
}

// Property sweep: Φ(x) + Φ(−x) = 1 for all x.
class NormalSymmetrySweep : public ::testing::TestWithParam<double> {};

TEST_P(NormalSymmetrySweep, CdfSymmetry) {
  const double x = GetParam();
  EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Points, NormalSymmetrySweep,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0, 1.96, 2.5, 4.0,
                                           6.0, 8.0));

}  // namespace
}  // namespace eta2::stats
