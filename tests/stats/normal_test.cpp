#include "stats/normal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace eta2::stats {
namespace {

TEST(NormalPdfTest, StandardValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-15);
}

TEST(NormalPdfTest, ScaledDensityIntegratesConsistently) {
  // f(x; m, s) = f((x-m)/s) / s
  EXPECT_NEAR(normal_pdf(3.0, 3.0, 2.0), normal_pdf(0.0) / 2.0, 1e-12);
  EXPECT_NEAR(normal_pdf(5.0, 3.0, 2.0), normal_pdf(1.0) / 2.0, 1e-12);
}

TEST(NormalPdfTest, RejectsNonPositiveStddev) {
  EXPECT_THROW(normal_pdf(0.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(normal_pdf(0.0, 0.0, -1.0), std::invalid_argument);
}

TEST(NormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.9750021048517795, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.96), 1.0 - 0.9750021048517795, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-9);
}

TEST(NormalCdfTest, Monotone) {
  double prev = 0.0;
  for (double x = -6.0; x <= 6.0; x += 0.05) {
    const double c = normal_cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(NormalQuantileTest, InvertsCdf) {
  for (double p = 0.001; p < 1.0; p += 0.0217) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantileTest, TailAccuracy) {
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(1e-6), -4.753424308822899, 1e-6);
}

TEST(NormalQuantileTest, RejectsOutOfRange) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(-0.5), std::invalid_argument);
}

TEST(ZCriticalTest, StandardLevels) {
  EXPECT_NEAR(z_critical(0.05), 1.959963984540054, 1e-9);
  EXPECT_NEAR(z_critical(0.1), 1.6448536269514722, 1e-9);
  EXPECT_NEAR(z_critical(0.01), 2.5758293035489004, 1e-8);
}

TEST(AccuracyProbabilityTest, PaperEq11) {
  // p = 2Φ(εu) − 1
  EXPECT_NEAR(accuracy_probability(0.0, 0.1), 0.0, 1e-15);
  EXPECT_NEAR(accuracy_probability(1.0, 0.1),
              2.0 * normal_cdf(0.1) - 1.0, 1e-12);
  EXPECT_NEAR(accuracy_probability(19.6, 0.1),
              2.0 * normal_cdf(1.96) - 1.0, 1e-12);
}

TEST(AccuracyProbabilityTest, MonotoneInExpertise) {
  double prev = -1.0;
  for (double u = 0.0; u <= 30.0; u += 0.5) {
    const double p = accuracy_probability(u, 0.1);
    EXPECT_GT(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, 1.0);
    prev = p;
  }
}

TEST(AccuracyProbabilityTest, RejectsNegativeInputs) {
  EXPECT_THROW(accuracy_probability(-1.0, 0.1), std::invalid_argument);
  EXPECT_THROW(accuracy_probability(1.0, -0.1), std::invalid_argument);
}

// --- accuracy_probability_batch -------------------------------------------

// ULP distance between two finite doubles of the same sign via the ordered
// bit-pattern trick (adjacent doubles differ by 1).
std::uint64_t ulp_distance(double a, double b) {
  const auto bits = [](double x) {
    std::uint64_t u = 0;
    std::memcpy(&u, &x, sizeof(u));
    return u;
  };
  const std::uint64_t ua = bits(a);
  const std::uint64_t ub = bits(b);
  return ua > ub ? ua - ub : ub - ua;
}

TEST(AccuracyBatchTest, ExactTierIsBitIdenticalToScalar) {
  std::vector<double> expertise;
  for (int i = 0; i < 400; ++i) expertise.push_back(static_cast<double>(i) * 0.07);
  expertise.push_back(0.0);
  expertise.push_back(1e-12);
  expertise.push_back(1e6);
  for (const double epsilon : {0.0, 0.05, 0.1, 1.0, 3.0}) {
    std::vector<double> out(expertise.size(), -1.0);
    accuracy_probability_batch(expertise, epsilon, out);
    for (std::size_t i = 0; i < expertise.size(); ++i) {
      const double scalar = accuracy_probability(expertise[i], epsilon);
      EXPECT_EQ(ulp_distance(out[i], scalar), 0u)
          << "u=" << expertise[i] << " eps=" << epsilon;
    }
  }
}

TEST(AccuracyBatchTest, HoistedValidationMatchesScalarChecks) {
  std::vector<double> good{0.5, 1.0};
  std::vector<double> out(2, 0.0);
  // Size mismatch is a batch-only precondition.
  std::vector<double> short_out(1, 0.0);
  EXPECT_THROW(
      accuracy_probability_batch(good, 0.1, short_out),
      std::invalid_argument);
  // Negative epsilon and negative expertise throw the same type the scalar
  // entry point throws — validated once per batch, not per cell.
  EXPECT_THROW(accuracy_probability_batch(good, -0.1, out),
               std::invalid_argument);
  std::vector<double> with_negative{0.5, -1.0};
  EXPECT_THROW(accuracy_probability_batch(with_negative, 0.1, out),
               std::invalid_argument);
  // NaN expertise fails the same u >= 0 predicate the scalar require uses.
  std::vector<double> with_nan{0.5, std::nan("")};
  EXPECT_THROW(accuracy_probability_batch(with_nan, 0.1, out),
               std::invalid_argument);
  // Empty batch is a no-op, not an error.
  std::vector<double> empty;
  std::vector<double> empty_out;
  EXPECT_NO_THROW(accuracy_probability_batch(empty, 0.1, empty_out));
}

TEST(AccuracyBatchTest, SplineTierStaysWithinPinnedTolerance) {
  // FastMathTier::kSplineV1's contract: |err| <= 1e-10 absolute. The ULP
  // bound below pins the measured approximation quality; loosening it means
  // the tier's error contract changed and needs a NEW enumerator, not an
  // edit (normal.h: tiers are explicitly versioned).
  std::vector<double> expertise;
  for (int i = 0; i <= 20000; ++i) {
    expertise.push_back(static_cast<double>(i) * 0.0005);  // u·ε spans [0, 3]
  }
  std::vector<double> out(expertise.size(), 0.0);
  const double epsilon = 0.3;
  accuracy_probability_batch(expertise, epsilon, out, FastMathTier::kSplineV1);
  double max_abs_err = 0.0;
  std::uint64_t max_ulp = 0;
  for (std::size_t i = 0; i < expertise.size(); ++i) {
    const double exact = accuracy_probability(expertise[i], epsilon);
    max_abs_err = std::max(max_abs_err, std::fabs(out[i] - exact));
    if (out[i] > 0.0 && exact > 0.0) {
      max_ulp = std::max(max_ulp, ulp_distance(out[i], exact));
    }
    EXPECT_GE(out[i], 0.0);
    EXPECT_LE(out[i], 1.0);
  }
  EXPECT_LE(max_abs_err, 1e-10);
  // Measured headroom: interpolation error is ~9e-12 on this grid. ULPs are
  // large near 0 where the result itself is tiny; the absolute bound is the
  // contract, the ULP pin guards against silent regression at mid-range.
  std::uint64_t mid_ulp = 0;
  for (std::size_t i = 0; i < expertise.size(); ++i) {
    const double exact = accuracy_probability(expertise[i], epsilon);
    if (exact > 0.1) {
      mid_ulp = std::max(mid_ulp, ulp_distance(out[i], exact));
    }
  }
  EXPECT_LE(mid_ulp, 1u << 19);  // measured 318341; ~6e-11 rel at p ≈ 0.1..1
}

TEST(AccuracyBatchTest, SplineTierClampsSaturatedArguments) {
  // Beyond the spline grid (ε·u/√2 >= 6) erf saturates; the tier returns
  // exactly 1.0 and must never exceed it.
  std::vector<double> expertise{10.0, 100.0, 1e6};
  std::vector<double> out(expertise.size(), 0.0);
  accuracy_probability_batch(expertise, 2.0, out, FastMathTier::kSplineV1);
  for (const double p : out) EXPECT_EQ(p, 1.0);
}

// Property sweep: Φ(x) + Φ(−x) = 1 for all x.
class NormalSymmetrySweep : public ::testing::TestWithParam<double> {};

TEST_P(NormalSymmetrySweep, CdfSymmetry) {
  const double x = GetParam();
  EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Points, NormalSymmetrySweep,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0, 1.96, 2.5, 4.0,
                                           6.0, 8.0));

}  // namespace
}  // namespace eta2::stats
