#include "stats/ks_test.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace eta2::stats {
namespace {

TEST(KolmogorovQTest, KnownValues) {
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.0), 1.0);
  // Q(λ) reference points of the Kolmogorov distribution.
  EXPECT_NEAR(kolmogorov_q(1.36), 0.0505, 2e-3);   // ~5% critical value
  EXPECT_NEAR(kolmogorov_q(1.63), 0.0098, 1e-3);   // ~1% critical value
  EXPECT_NEAR(kolmogorov_q(0.5), 0.9639, 1e-3);
}

TEST(KolmogorovQTest, MonotoneDecreasing) {
  double prev = 1.1;
  for (double lambda = 0.1; lambda < 3.0; lambda += 0.1) {
    const double q = kolmogorov_q(lambda);
    EXPECT_LT(q, prev);
    EXPECT_GE(q, 0.0);
    prev = q;
  }
}

TEST(KsNormalityTest, AcceptsNormalSamples) {
  Rng rng(5);
  int rejected = 0;
  constexpr int kSets = 150;
  for (int s = 0; s < kSets; ++s) {
    std::vector<double> obs;
    for (int i = 0; i < 50; ++i) obs.push_back(rng.normal(3.0, 1.5));
    const KsResult r = ks_normality_test(obs);
    ASSERT_TRUE(r.valid);
    if (r.p_value < 0.05) ++rejected;
  }
  // Lilliefors standardization makes the asymptotic p-values conservative,
  // so the rejection rate sits at or below the nominal 5%... in practice the
  // estimated-parameter effect can push it modestly above; allow headroom.
  EXPECT_LT(rejected, kSets / 4);
}

TEST(KsNormalityTest, RejectsUniformSamples) {
  // The uniform-vs-fitted-normal CDF gap is only ~0.06, so rejection needs
  // a large sample (λ = D·√n must clear the ~1.36 critical value).
  Rng rng(7);
  int rejected = 0;
  constexpr int kSets = 30;
  for (int s = 0; s < kSets; ++s) {
    std::vector<double> obs;
    for (int i = 0; i < 2000; ++i) obs.push_back(rng.uniform(0.0, 1.0));
    const KsResult r = ks_normality_test(obs);
    ASSERT_TRUE(r.valid);
    if (r.p_value < 0.05) ++rejected;
  }
  EXPECT_GT(rejected, kSets / 2);
}

TEST(KsNormalityTest, RejectsBimodalSamples) {
  Rng rng(9);
  std::vector<double> obs;
  for (int i = 0; i < 300; ++i) {
    obs.push_back(rng.bernoulli(0.5) ? rng.normal(-4.0, 0.3)
                                     : rng.normal(4.0, 0.3));
  }
  const KsResult r = ks_normality_test(obs);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(KsNormalityTest, InvalidCases) {
  const std::vector<double> tiny{1.0, 2.0, 3.0};
  EXPECT_FALSE(ks_normality_test(tiny).valid);
  const std::vector<double> constant(20, 5.0);
  EXPECT_FALSE(ks_normality_test(constant).valid);
}

TEST(KsNormalityTest, StatisticInUnitInterval) {
  Rng rng(11);
  std::vector<double> obs;
  for (int i = 0; i < 40; ++i) obs.push_back(rng.uniform(-5.0, 5.0));
  const KsResult r = ks_normality_test(obs);
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.statistic, 0.0);
  EXPECT_LE(r.statistic, 1.0);
}

}  // namespace
}  // namespace eta2::stats
