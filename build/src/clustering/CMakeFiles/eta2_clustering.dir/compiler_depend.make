# Empty compiler generated dependencies file for eta2_clustering.
# This may be replaced when dependencies are built.
