file(REMOVE_RECURSE
  "CMakeFiles/eta2_clustering.dir/dynamic_clusterer.cpp.o"
  "CMakeFiles/eta2_clustering.dir/dynamic_clusterer.cpp.o.d"
  "CMakeFiles/eta2_clustering.dir/linkage.cpp.o"
  "CMakeFiles/eta2_clustering.dir/linkage.cpp.o.d"
  "CMakeFiles/eta2_clustering.dir/metrics.cpp.o"
  "CMakeFiles/eta2_clustering.dir/metrics.cpp.o.d"
  "libeta2_clustering.a"
  "libeta2_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta2_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
