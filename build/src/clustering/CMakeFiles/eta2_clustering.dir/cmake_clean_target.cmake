file(REMOVE_RECURSE
  "libeta2_clustering.a"
)
