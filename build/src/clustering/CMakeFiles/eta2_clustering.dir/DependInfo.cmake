
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/dynamic_clusterer.cpp" "src/clustering/CMakeFiles/eta2_clustering.dir/dynamic_clusterer.cpp.o" "gcc" "src/clustering/CMakeFiles/eta2_clustering.dir/dynamic_clusterer.cpp.o.d"
  "/root/repo/src/clustering/linkage.cpp" "src/clustering/CMakeFiles/eta2_clustering.dir/linkage.cpp.o" "gcc" "src/clustering/CMakeFiles/eta2_clustering.dir/linkage.cpp.o.d"
  "/root/repo/src/clustering/metrics.cpp" "src/clustering/CMakeFiles/eta2_clustering.dir/metrics.cpp.o" "gcc" "src/clustering/CMakeFiles/eta2_clustering.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eta2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/eta2_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
