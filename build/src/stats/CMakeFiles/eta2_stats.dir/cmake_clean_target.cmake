file(REMOVE_RECURSE
  "libeta2_stats.a"
)
