file(REMOVE_RECURSE
  "CMakeFiles/eta2_stats.dir/chi_square.cpp.o"
  "CMakeFiles/eta2_stats.dir/chi_square.cpp.o.d"
  "CMakeFiles/eta2_stats.dir/confidence.cpp.o"
  "CMakeFiles/eta2_stats.dir/confidence.cpp.o.d"
  "CMakeFiles/eta2_stats.dir/descriptive.cpp.o"
  "CMakeFiles/eta2_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/eta2_stats.dir/histogram.cpp.o"
  "CMakeFiles/eta2_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/eta2_stats.dir/ks_test.cpp.o"
  "CMakeFiles/eta2_stats.dir/ks_test.cpp.o.d"
  "CMakeFiles/eta2_stats.dir/normal.cpp.o"
  "CMakeFiles/eta2_stats.dir/normal.cpp.o.d"
  "libeta2_stats.a"
  "libeta2_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta2_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
