# Empty dependencies file for eta2_stats.
# This may be replaced when dependencies are built.
