file(REMOVE_RECURSE
  "libeta2_common.a"
)
