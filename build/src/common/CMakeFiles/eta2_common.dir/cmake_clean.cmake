file(REMOVE_RECURSE
  "CMakeFiles/eta2_common.dir/csv.cpp.o"
  "CMakeFiles/eta2_common.dir/csv.cpp.o.d"
  "CMakeFiles/eta2_common.dir/flags.cpp.o"
  "CMakeFiles/eta2_common.dir/flags.cpp.o.d"
  "CMakeFiles/eta2_common.dir/parallel.cpp.o"
  "CMakeFiles/eta2_common.dir/parallel.cpp.o.d"
  "CMakeFiles/eta2_common.dir/rng.cpp.o"
  "CMakeFiles/eta2_common.dir/rng.cpp.o.d"
  "CMakeFiles/eta2_common.dir/strings.cpp.o"
  "CMakeFiles/eta2_common.dir/strings.cpp.o.d"
  "CMakeFiles/eta2_common.dir/table.cpp.o"
  "CMakeFiles/eta2_common.dir/table.cpp.o.d"
  "libeta2_common.a"
  "libeta2_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta2_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
