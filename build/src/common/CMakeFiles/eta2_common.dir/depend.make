# Empty dependencies file for eta2_common.
# This may be replaced when dependencies are built.
