file(REMOVE_RECURSE
  "libeta2_text.a"
)
