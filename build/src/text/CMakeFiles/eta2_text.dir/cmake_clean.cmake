file(REMOVE_RECURSE
  "CMakeFiles/eta2_text.dir/corpus.cpp.o"
  "CMakeFiles/eta2_text.dir/corpus.cpp.o.d"
  "CMakeFiles/eta2_text.dir/embedder.cpp.o"
  "CMakeFiles/eta2_text.dir/embedder.cpp.o.d"
  "CMakeFiles/eta2_text.dir/embedding.cpp.o"
  "CMakeFiles/eta2_text.dir/embedding.cpp.o.d"
  "CMakeFiles/eta2_text.dir/embedding_io.cpp.o"
  "CMakeFiles/eta2_text.dir/embedding_io.cpp.o.d"
  "CMakeFiles/eta2_text.dir/lexicon.cpp.o"
  "CMakeFiles/eta2_text.dir/lexicon.cpp.o.d"
  "CMakeFiles/eta2_text.dir/pairword.cpp.o"
  "CMakeFiles/eta2_text.dir/pairword.cpp.o.d"
  "CMakeFiles/eta2_text.dir/phrases.cpp.o"
  "CMakeFiles/eta2_text.dir/phrases.cpp.o.d"
  "CMakeFiles/eta2_text.dir/skipgram.cpp.o"
  "CMakeFiles/eta2_text.dir/skipgram.cpp.o.d"
  "CMakeFiles/eta2_text.dir/tokenizer.cpp.o"
  "CMakeFiles/eta2_text.dir/tokenizer.cpp.o.d"
  "CMakeFiles/eta2_text.dir/vocab.cpp.o"
  "CMakeFiles/eta2_text.dir/vocab.cpp.o.d"
  "libeta2_text.a"
  "libeta2_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta2_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
