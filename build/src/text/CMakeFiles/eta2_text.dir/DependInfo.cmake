
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/corpus.cpp" "src/text/CMakeFiles/eta2_text.dir/corpus.cpp.o" "gcc" "src/text/CMakeFiles/eta2_text.dir/corpus.cpp.o.d"
  "/root/repo/src/text/embedder.cpp" "src/text/CMakeFiles/eta2_text.dir/embedder.cpp.o" "gcc" "src/text/CMakeFiles/eta2_text.dir/embedder.cpp.o.d"
  "/root/repo/src/text/embedding.cpp" "src/text/CMakeFiles/eta2_text.dir/embedding.cpp.o" "gcc" "src/text/CMakeFiles/eta2_text.dir/embedding.cpp.o.d"
  "/root/repo/src/text/embedding_io.cpp" "src/text/CMakeFiles/eta2_text.dir/embedding_io.cpp.o" "gcc" "src/text/CMakeFiles/eta2_text.dir/embedding_io.cpp.o.d"
  "/root/repo/src/text/lexicon.cpp" "src/text/CMakeFiles/eta2_text.dir/lexicon.cpp.o" "gcc" "src/text/CMakeFiles/eta2_text.dir/lexicon.cpp.o.d"
  "/root/repo/src/text/pairword.cpp" "src/text/CMakeFiles/eta2_text.dir/pairword.cpp.o" "gcc" "src/text/CMakeFiles/eta2_text.dir/pairword.cpp.o.d"
  "/root/repo/src/text/phrases.cpp" "src/text/CMakeFiles/eta2_text.dir/phrases.cpp.o" "gcc" "src/text/CMakeFiles/eta2_text.dir/phrases.cpp.o.d"
  "/root/repo/src/text/skipgram.cpp" "src/text/CMakeFiles/eta2_text.dir/skipgram.cpp.o" "gcc" "src/text/CMakeFiles/eta2_text.dir/skipgram.cpp.o.d"
  "/root/repo/src/text/tokenizer.cpp" "src/text/CMakeFiles/eta2_text.dir/tokenizer.cpp.o" "gcc" "src/text/CMakeFiles/eta2_text.dir/tokenizer.cpp.o.d"
  "/root/repo/src/text/vocab.cpp" "src/text/CMakeFiles/eta2_text.dir/vocab.cpp.o" "gcc" "src/text/CMakeFiles/eta2_text.dir/vocab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eta2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
