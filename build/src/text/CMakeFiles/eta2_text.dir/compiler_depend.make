# Empty compiler generated dependencies file for eta2_text.
# This may be replaced when dependencies are built.
