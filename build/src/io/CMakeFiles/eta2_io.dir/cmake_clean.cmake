file(REMOVE_RECURSE
  "CMakeFiles/eta2_io.dir/dataset_io.cpp.o"
  "CMakeFiles/eta2_io.dir/dataset_io.cpp.o.d"
  "CMakeFiles/eta2_io.dir/results_io.cpp.o"
  "CMakeFiles/eta2_io.dir/results_io.cpp.o.d"
  "libeta2_io.a"
  "libeta2_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta2_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
