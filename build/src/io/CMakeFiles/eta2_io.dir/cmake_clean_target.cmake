file(REMOVE_RECURSE
  "libeta2_io.a"
)
