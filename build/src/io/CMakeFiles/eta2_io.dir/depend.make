# Empty dependencies file for eta2_io.
# This may be replaced when dependencies are built.
