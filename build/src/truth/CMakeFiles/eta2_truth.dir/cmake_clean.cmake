file(REMOVE_RECURSE
  "CMakeFiles/eta2_truth.dir/baselines.cpp.o"
  "CMakeFiles/eta2_truth.dir/baselines.cpp.o.d"
  "CMakeFiles/eta2_truth.dir/eta2_mle.cpp.o"
  "CMakeFiles/eta2_truth.dir/eta2_mle.cpp.o.d"
  "CMakeFiles/eta2_truth.dir/expertise_store.cpp.o"
  "CMakeFiles/eta2_truth.dir/expertise_store.cpp.o.d"
  "CMakeFiles/eta2_truth.dir/observation.cpp.o"
  "CMakeFiles/eta2_truth.dir/observation.cpp.o.d"
  "CMakeFiles/eta2_truth.dir/reliability_common.cpp.o"
  "CMakeFiles/eta2_truth.dir/reliability_common.cpp.o.d"
  "CMakeFiles/eta2_truth.dir/task_confidence.cpp.o"
  "CMakeFiles/eta2_truth.dir/task_confidence.cpp.o.d"
  "CMakeFiles/eta2_truth.dir/variance_em.cpp.o"
  "CMakeFiles/eta2_truth.dir/variance_em.cpp.o.d"
  "libeta2_truth.a"
  "libeta2_truth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta2_truth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
