# Empty compiler generated dependencies file for eta2_truth.
# This may be replaced when dependencies are built.
