file(REMOVE_RECURSE
  "libeta2_truth.a"
)
