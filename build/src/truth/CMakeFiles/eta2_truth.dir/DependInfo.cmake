
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/truth/baselines.cpp" "src/truth/CMakeFiles/eta2_truth.dir/baselines.cpp.o" "gcc" "src/truth/CMakeFiles/eta2_truth.dir/baselines.cpp.o.d"
  "/root/repo/src/truth/eta2_mle.cpp" "src/truth/CMakeFiles/eta2_truth.dir/eta2_mle.cpp.o" "gcc" "src/truth/CMakeFiles/eta2_truth.dir/eta2_mle.cpp.o.d"
  "/root/repo/src/truth/expertise_store.cpp" "src/truth/CMakeFiles/eta2_truth.dir/expertise_store.cpp.o" "gcc" "src/truth/CMakeFiles/eta2_truth.dir/expertise_store.cpp.o.d"
  "/root/repo/src/truth/observation.cpp" "src/truth/CMakeFiles/eta2_truth.dir/observation.cpp.o" "gcc" "src/truth/CMakeFiles/eta2_truth.dir/observation.cpp.o.d"
  "/root/repo/src/truth/reliability_common.cpp" "src/truth/CMakeFiles/eta2_truth.dir/reliability_common.cpp.o" "gcc" "src/truth/CMakeFiles/eta2_truth.dir/reliability_common.cpp.o.d"
  "/root/repo/src/truth/task_confidence.cpp" "src/truth/CMakeFiles/eta2_truth.dir/task_confidence.cpp.o" "gcc" "src/truth/CMakeFiles/eta2_truth.dir/task_confidence.cpp.o.d"
  "/root/repo/src/truth/variance_em.cpp" "src/truth/CMakeFiles/eta2_truth.dir/variance_em.cpp.o" "gcc" "src/truth/CMakeFiles/eta2_truth.dir/variance_em.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eta2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/eta2_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
