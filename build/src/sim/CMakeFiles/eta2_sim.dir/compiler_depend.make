# Empty compiler generated dependencies file for eta2_sim.
# This may be replaced when dependencies are built.
