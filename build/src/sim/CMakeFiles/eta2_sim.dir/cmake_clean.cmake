file(REMOVE_RECURSE
  "CMakeFiles/eta2_sim.dir/dataset.cpp.o"
  "CMakeFiles/eta2_sim.dir/dataset.cpp.o.d"
  "CMakeFiles/eta2_sim.dir/experiment.cpp.o"
  "CMakeFiles/eta2_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/eta2_sim.dir/report.cpp.o"
  "CMakeFiles/eta2_sim.dir/report.cpp.o.d"
  "CMakeFiles/eta2_sim.dir/simulation.cpp.o"
  "CMakeFiles/eta2_sim.dir/simulation.cpp.o.d"
  "libeta2_sim.a"
  "libeta2_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta2_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
