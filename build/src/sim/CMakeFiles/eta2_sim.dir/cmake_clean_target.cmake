file(REMOVE_RECURSE
  "libeta2_sim.a"
)
