# Empty dependencies file for eta2_alloc.
# This may be replaced when dependencies are built.
