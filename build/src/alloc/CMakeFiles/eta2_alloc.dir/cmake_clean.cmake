file(REMOVE_RECURSE
  "CMakeFiles/eta2_alloc.dir/allocation.cpp.o"
  "CMakeFiles/eta2_alloc.dir/allocation.cpp.o.d"
  "CMakeFiles/eta2_alloc.dir/baseline_allocators.cpp.o"
  "CMakeFiles/eta2_alloc.dir/baseline_allocators.cpp.o.d"
  "CMakeFiles/eta2_alloc.dir/bruteforce.cpp.o"
  "CMakeFiles/eta2_alloc.dir/bruteforce.cpp.o.d"
  "CMakeFiles/eta2_alloc.dir/knapsack.cpp.o"
  "CMakeFiles/eta2_alloc.dir/knapsack.cpp.o.d"
  "CMakeFiles/eta2_alloc.dir/max_quality.cpp.o"
  "CMakeFiles/eta2_alloc.dir/max_quality.cpp.o.d"
  "CMakeFiles/eta2_alloc.dir/min_cost.cpp.o"
  "CMakeFiles/eta2_alloc.dir/min_cost.cpp.o.d"
  "libeta2_alloc.a"
  "libeta2_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta2_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
