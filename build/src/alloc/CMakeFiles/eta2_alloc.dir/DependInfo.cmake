
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/allocation.cpp" "src/alloc/CMakeFiles/eta2_alloc.dir/allocation.cpp.o" "gcc" "src/alloc/CMakeFiles/eta2_alloc.dir/allocation.cpp.o.d"
  "/root/repo/src/alloc/baseline_allocators.cpp" "src/alloc/CMakeFiles/eta2_alloc.dir/baseline_allocators.cpp.o" "gcc" "src/alloc/CMakeFiles/eta2_alloc.dir/baseline_allocators.cpp.o.d"
  "/root/repo/src/alloc/bruteforce.cpp" "src/alloc/CMakeFiles/eta2_alloc.dir/bruteforce.cpp.o" "gcc" "src/alloc/CMakeFiles/eta2_alloc.dir/bruteforce.cpp.o.d"
  "/root/repo/src/alloc/knapsack.cpp" "src/alloc/CMakeFiles/eta2_alloc.dir/knapsack.cpp.o" "gcc" "src/alloc/CMakeFiles/eta2_alloc.dir/knapsack.cpp.o.d"
  "/root/repo/src/alloc/max_quality.cpp" "src/alloc/CMakeFiles/eta2_alloc.dir/max_quality.cpp.o" "gcc" "src/alloc/CMakeFiles/eta2_alloc.dir/max_quality.cpp.o.d"
  "/root/repo/src/alloc/min_cost.cpp" "src/alloc/CMakeFiles/eta2_alloc.dir/min_cost.cpp.o" "gcc" "src/alloc/CMakeFiles/eta2_alloc.dir/min_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eta2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/eta2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/truth/CMakeFiles/eta2_truth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
