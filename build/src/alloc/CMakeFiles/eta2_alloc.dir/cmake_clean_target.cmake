file(REMOVE_RECURSE
  "libeta2_alloc.a"
)
