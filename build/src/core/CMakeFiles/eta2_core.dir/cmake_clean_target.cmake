file(REMOVE_RECURSE
  "libeta2_core.a"
)
