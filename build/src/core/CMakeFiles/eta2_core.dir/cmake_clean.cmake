file(REMOVE_RECURSE
  "CMakeFiles/eta2_core.dir/eta2_server.cpp.o"
  "CMakeFiles/eta2_core.dir/eta2_server.cpp.o.d"
  "CMakeFiles/eta2_core.dir/one_shot.cpp.o"
  "CMakeFiles/eta2_core.dir/one_shot.cpp.o.d"
  "libeta2_core.a"
  "libeta2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
