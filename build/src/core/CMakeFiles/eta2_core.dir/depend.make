# Empty dependencies file for eta2_core.
# This may be replaced when dependencies are built.
