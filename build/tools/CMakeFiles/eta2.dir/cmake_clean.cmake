file(REMOVE_RECURSE
  "CMakeFiles/eta2.dir/eta2_cli.cpp.o"
  "CMakeFiles/eta2.dir/eta2_cli.cpp.o.d"
  "eta2"
  "eta2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
