# Empty dependencies file for eta2.
# This may be replaced when dependencies are built.
