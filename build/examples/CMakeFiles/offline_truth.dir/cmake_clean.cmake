file(REMOVE_RECURSE
  "CMakeFiles/offline_truth.dir/offline_truth.cpp.o"
  "CMakeFiles/offline_truth.dir/offline_truth.cpp.o.d"
  "offline_truth"
  "offline_truth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_truth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
