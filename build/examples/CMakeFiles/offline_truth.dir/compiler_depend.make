# Empty compiler generated dependencies file for offline_truth.
# This may be replaced when dependencies are built.
