file(REMOVE_RECURSE
  "CMakeFiles/budgeted_sensing.dir/budgeted_sensing.cpp.o"
  "CMakeFiles/budgeted_sensing.dir/budgeted_sensing.cpp.o.d"
  "budgeted_sensing"
  "budgeted_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budgeted_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
