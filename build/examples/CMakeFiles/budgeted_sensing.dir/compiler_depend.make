# Empty compiler generated dependencies file for budgeted_sensing.
# This may be replaced when dependencies are built.
