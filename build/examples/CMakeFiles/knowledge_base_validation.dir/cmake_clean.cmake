file(REMOVE_RECURSE
  "CMakeFiles/knowledge_base_validation.dir/knowledge_base_validation.cpp.o"
  "CMakeFiles/knowledge_base_validation.dir/knowledge_base_validation.cpp.o.d"
  "knowledge_base_validation"
  "knowledge_base_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_base_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
