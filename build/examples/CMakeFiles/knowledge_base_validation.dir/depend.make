# Empty dependencies file for knowledge_base_validation.
# This may be replaced when dependencies are built.
