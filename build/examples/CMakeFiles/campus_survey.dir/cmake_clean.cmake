file(REMOVE_RECURSE
  "CMakeFiles/campus_survey.dir/campus_survey.cpp.o"
  "CMakeFiles/campus_survey.dir/campus_survey.cpp.o.d"
  "campus_survey"
  "campus_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
