# Empty dependencies file for campus_survey.
# This may be replaced when dependencies are built.
