# Empty dependencies file for server_checkpoint.
# This may be replaced when dependencies are built.
