file(REMOVE_RECURSE
  "CMakeFiles/server_checkpoint.dir/server_checkpoint.cpp.o"
  "CMakeFiles/server_checkpoint.dir/server_checkpoint.cpp.o.d"
  "server_checkpoint"
  "server_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
