# Empty compiler generated dependencies file for domain_discovery.
# This may be replaced when dependencies are built.
