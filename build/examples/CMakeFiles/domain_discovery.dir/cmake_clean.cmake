file(REMOVE_RECURSE
  "CMakeFiles/domain_discovery.dir/domain_discovery.cpp.o"
  "CMakeFiles/domain_discovery.dir/domain_discovery.cpp.o.d"
  "domain_discovery"
  "domain_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
