file(REMOVE_RECURSE
  "CMakeFiles/fig05_error_over_days.dir/fig05_error_over_days.cpp.o"
  "CMakeFiles/fig05_error_over_days.dir/fig05_error_over_days.cpp.o.d"
  "fig05_error_over_days"
  "fig05_error_over_days.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_error_over_days.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
