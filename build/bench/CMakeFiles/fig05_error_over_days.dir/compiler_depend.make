# Empty compiler generated dependencies file for fig05_error_over_days.
# This may be replaced when dependencies are built.
