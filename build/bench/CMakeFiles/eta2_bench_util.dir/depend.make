# Empty dependencies file for eta2_bench_util.
# This may be replaced when dependencies are built.
