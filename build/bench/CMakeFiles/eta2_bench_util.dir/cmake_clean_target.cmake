file(REMOVE_RECURSE
  "../lib/libeta2_bench_util.a"
)
