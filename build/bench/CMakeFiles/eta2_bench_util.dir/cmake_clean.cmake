file(REMOVE_RECURSE
  "../lib/libeta2_bench_util.a"
  "../lib/libeta2_bench_util.pdb"
  "CMakeFiles/eta2_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/eta2_bench_util.dir/bench_util.cpp.o.d"
  "CMakeFiles/eta2_bench_util.dir/mincost_common.cpp.o"
  "CMakeFiles/eta2_bench_util.dir/mincost_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta2_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
