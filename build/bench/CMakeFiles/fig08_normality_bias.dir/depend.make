# Empty dependencies file for fig08_normality_bias.
# This may be replaced when dependencies are built.
