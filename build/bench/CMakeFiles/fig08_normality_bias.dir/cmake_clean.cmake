file(REMOVE_RECURSE
  "CMakeFiles/fig08_normality_bias.dir/fig08_normality_bias.cpp.o"
  "CMakeFiles/fig08_normality_bias.dir/fig08_normality_bias.cpp.o.d"
  "fig08_normality_bias"
  "fig08_normality_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_normality_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
