# Empty compiler generated dependencies file for fig10_mincost_cost.
# This may be replaced when dependencies are built.
