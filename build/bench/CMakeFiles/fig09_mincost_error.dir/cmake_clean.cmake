file(REMOVE_RECURSE
  "CMakeFiles/fig09_mincost_error.dir/fig09_mincost_error.cpp.o"
  "CMakeFiles/fig09_mincost_error.dir/fig09_mincost_error.cpp.o.d"
  "fig09_mincost_error"
  "fig09_mincost_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_mincost_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
