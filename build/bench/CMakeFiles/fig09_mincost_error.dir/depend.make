# Empty dependencies file for fig09_mincost_error.
# This may be replaced when dependencies are built.
