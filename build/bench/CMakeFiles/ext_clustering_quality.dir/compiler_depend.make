# Empty compiler generated dependencies file for ext_clustering_quality.
# This may be replaced when dependencies are built.
