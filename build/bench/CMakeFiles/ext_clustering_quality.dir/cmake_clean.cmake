file(REMOVE_RECURSE
  "CMakeFiles/ext_clustering_quality.dir/ext_clustering_quality.cpp.o"
  "CMakeFiles/ext_clustering_quality.dir/ext_clustering_quality.cpp.o.d"
  "ext_clustering_quality"
  "ext_clustering_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_clustering_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
