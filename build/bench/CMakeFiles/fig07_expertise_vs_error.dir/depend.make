# Empty dependencies file for fig07_expertise_vs_error.
# This may be replaced when dependencies are built.
