file(REMOVE_RECURSE
  "CMakeFiles/fig07_expertise_vs_error.dir/fig07_expertise_vs_error.cpp.o"
  "CMakeFiles/fig07_expertise_vs_error.dir/fig07_expertise_vs_error.cpp.o.d"
  "fig07_expertise_vs_error"
  "fig07_expertise_vs_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_expertise_vs_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
