# Empty dependencies file for fig02_error_distribution.
# This may be replaced when dependencies are built.
