# Empty dependencies file for fig04_param_sweep.
# This may be replaced when dependencies are built.
