file(REMOVE_RECURSE
  "CMakeFiles/ext_dropout_robustness.dir/ext_dropout_robustness.cpp.o"
  "CMakeFiles/ext_dropout_robustness.dir/ext_dropout_robustness.cpp.o.d"
  "ext_dropout_robustness"
  "ext_dropout_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dropout_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
