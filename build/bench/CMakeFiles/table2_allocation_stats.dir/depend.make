# Empty dependencies file for table2_allocation_stats.
# This may be replaced when dependencies are built.
