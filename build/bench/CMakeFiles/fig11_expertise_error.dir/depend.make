# Empty dependencies file for fig11_expertise_error.
# This may be replaced when dependencies are built.
