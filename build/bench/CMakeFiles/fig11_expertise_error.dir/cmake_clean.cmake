file(REMOVE_RECURSE
  "CMakeFiles/fig11_expertise_error.dir/fig11_expertise_error.cpp.o"
  "CMakeFiles/fig11_expertise_error.dir/fig11_expertise_error.cpp.o.d"
  "fig11_expertise_error"
  "fig11_expertise_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_expertise_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
