file(REMOVE_RECURSE
  "CMakeFiles/ext_adversarial_robustness.dir/ext_adversarial_robustness.cpp.o"
  "CMakeFiles/ext_adversarial_robustness.dir/ext_adversarial_robustness.cpp.o.d"
  "ext_adversarial_robustness"
  "ext_adversarial_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_adversarial_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
