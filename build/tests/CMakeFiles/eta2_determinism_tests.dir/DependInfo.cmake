
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/parallel_test.cpp" "tests/CMakeFiles/eta2_determinism_tests.dir/common/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_determinism_tests.dir/common/parallel_test.cpp.o.d"
  "/root/repo/tests/integration/determinism_test.cpp" "tests/CMakeFiles/eta2_determinism_tests.dir/integration/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_determinism_tests.dir/integration/determinism_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/eta2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eta2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/eta2_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/truth/CMakeFiles/eta2_truth.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/eta2_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/eta2_text.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/eta2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eta2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
