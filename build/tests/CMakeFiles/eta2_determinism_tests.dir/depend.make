# Empty dependencies file for eta2_determinism_tests.
# This may be replaced when dependencies are built.
