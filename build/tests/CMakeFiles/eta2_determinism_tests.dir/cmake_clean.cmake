file(REMOVE_RECURSE
  "CMakeFiles/eta2_determinism_tests.dir/common/parallel_test.cpp.o"
  "CMakeFiles/eta2_determinism_tests.dir/common/parallel_test.cpp.o.d"
  "CMakeFiles/eta2_determinism_tests.dir/integration/determinism_test.cpp.o"
  "CMakeFiles/eta2_determinism_tests.dir/integration/determinism_test.cpp.o.d"
  "eta2_determinism_tests"
  "eta2_determinism_tests.pdb"
  "eta2_determinism_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta2_determinism_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
