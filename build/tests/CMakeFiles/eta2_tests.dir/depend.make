# Empty dependencies file for eta2_tests.
# This may be replaced when dependencies are built.
