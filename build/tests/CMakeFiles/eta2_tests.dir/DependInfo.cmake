
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alloc/allocation_test.cpp" "tests/CMakeFiles/eta2_tests.dir/alloc/allocation_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/alloc/allocation_test.cpp.o.d"
  "/root/repo/tests/alloc/baseline_allocators_test.cpp" "tests/CMakeFiles/eta2_tests.dir/alloc/baseline_allocators_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/alloc/baseline_allocators_test.cpp.o.d"
  "/root/repo/tests/alloc/bruteforce_test.cpp" "tests/CMakeFiles/eta2_tests.dir/alloc/bruteforce_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/alloc/bruteforce_test.cpp.o.d"
  "/root/repo/tests/alloc/greedy_oracle_test.cpp" "tests/CMakeFiles/eta2_tests.dir/alloc/greedy_oracle_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/alloc/greedy_oracle_test.cpp.o.d"
  "/root/repo/tests/alloc/knapsack_test.cpp" "tests/CMakeFiles/eta2_tests.dir/alloc/knapsack_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/alloc/knapsack_test.cpp.o.d"
  "/root/repo/tests/alloc/max_quality_test.cpp" "tests/CMakeFiles/eta2_tests.dir/alloc/max_quality_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/alloc/max_quality_test.cpp.o.d"
  "/root/repo/tests/alloc/min_cost_test.cpp" "tests/CMakeFiles/eta2_tests.dir/alloc/min_cost_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/alloc/min_cost_test.cpp.o.d"
  "/root/repo/tests/alloc/objective_property_test.cpp" "tests/CMakeFiles/eta2_tests.dir/alloc/objective_property_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/alloc/objective_property_test.cpp.o.d"
  "/root/repo/tests/clustering/dynamic_clusterer_test.cpp" "tests/CMakeFiles/eta2_tests.dir/clustering/dynamic_clusterer_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/clustering/dynamic_clusterer_test.cpp.o.d"
  "/root/repo/tests/clustering/linkage_oracle_test.cpp" "tests/CMakeFiles/eta2_tests.dir/clustering/linkage_oracle_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/clustering/linkage_oracle_test.cpp.o.d"
  "/root/repo/tests/clustering/linkage_test.cpp" "tests/CMakeFiles/eta2_tests.dir/clustering/linkage_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/clustering/linkage_test.cpp.o.d"
  "/root/repo/tests/clustering/metrics_test.cpp" "tests/CMakeFiles/eta2_tests.dir/clustering/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/clustering/metrics_test.cpp.o.d"
  "/root/repo/tests/common/csv_test.cpp" "tests/CMakeFiles/eta2_tests.dir/common/csv_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/common/csv_test.cpp.o.d"
  "/root/repo/tests/common/flags_test.cpp" "tests/CMakeFiles/eta2_tests.dir/common/flags_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/common/flags_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/eta2_tests.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/strings_test.cpp" "tests/CMakeFiles/eta2_tests.dir/common/strings_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/common/strings_test.cpp.o.d"
  "/root/repo/tests/common/table_test.cpp" "tests/CMakeFiles/eta2_tests.dir/common/table_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/common/table_test.cpp.o.d"
  "/root/repo/tests/core/eta2_server_test.cpp" "tests/CMakeFiles/eta2_tests.dir/core/eta2_server_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/core/eta2_server_test.cpp.o.d"
  "/root/repo/tests/core/one_shot_test.cpp" "tests/CMakeFiles/eta2_tests.dir/core/one_shot_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/core/one_shot_test.cpp.o.d"
  "/root/repo/tests/core/persistence_test.cpp" "tests/CMakeFiles/eta2_tests.dir/core/persistence_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/core/persistence_test.cpp.o.d"
  "/root/repo/tests/integration/domain_lifecycle_test.cpp" "tests/CMakeFiles/eta2_tests.dir/integration/domain_lifecycle_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/integration/domain_lifecycle_test.cpp.o.d"
  "/root/repo/tests/integration/long_horizon_test.cpp" "tests/CMakeFiles/eta2_tests.dir/integration/long_horizon_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/integration/long_horizon_test.cpp.o.d"
  "/root/repo/tests/integration/pipeline_test.cpp" "tests/CMakeFiles/eta2_tests.dir/integration/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/integration/pipeline_test.cpp.o.d"
  "/root/repo/tests/io/dataset_io_test.cpp" "tests/CMakeFiles/eta2_tests.dir/io/dataset_io_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/io/dataset_io_test.cpp.o.d"
  "/root/repo/tests/sim/dataset_test.cpp" "tests/CMakeFiles/eta2_tests.dir/sim/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/sim/dataset_test.cpp.o.d"
  "/root/repo/tests/sim/report_test.cpp" "tests/CMakeFiles/eta2_tests.dir/sim/report_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/sim/report_test.cpp.o.d"
  "/root/repo/tests/sim/simulation_test.cpp" "tests/CMakeFiles/eta2_tests.dir/sim/simulation_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/sim/simulation_test.cpp.o.d"
  "/root/repo/tests/stats/chi_square_test.cpp" "tests/CMakeFiles/eta2_tests.dir/stats/chi_square_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/stats/chi_square_test.cpp.o.d"
  "/root/repo/tests/stats/confidence_test.cpp" "tests/CMakeFiles/eta2_tests.dir/stats/confidence_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/stats/confidence_test.cpp.o.d"
  "/root/repo/tests/stats/descriptive_test.cpp" "tests/CMakeFiles/eta2_tests.dir/stats/descriptive_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/stats/descriptive_test.cpp.o.d"
  "/root/repo/tests/stats/histogram_test.cpp" "tests/CMakeFiles/eta2_tests.dir/stats/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/stats/histogram_test.cpp.o.d"
  "/root/repo/tests/stats/ks_test_test.cpp" "tests/CMakeFiles/eta2_tests.dir/stats/ks_test_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/stats/ks_test_test.cpp.o.d"
  "/root/repo/tests/stats/normal_test.cpp" "tests/CMakeFiles/eta2_tests.dir/stats/normal_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/stats/normal_test.cpp.o.d"
  "/root/repo/tests/text/corpus_test.cpp" "tests/CMakeFiles/eta2_tests.dir/text/corpus_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/text/corpus_test.cpp.o.d"
  "/root/repo/tests/text/embedding_io_test.cpp" "tests/CMakeFiles/eta2_tests.dir/text/embedding_io_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/text/embedding_io_test.cpp.o.d"
  "/root/repo/tests/text/embedding_test.cpp" "tests/CMakeFiles/eta2_tests.dir/text/embedding_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/text/embedding_test.cpp.o.d"
  "/root/repo/tests/text/pairword_test.cpp" "tests/CMakeFiles/eta2_tests.dir/text/pairword_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/text/pairword_test.cpp.o.d"
  "/root/repo/tests/text/phrases_test.cpp" "tests/CMakeFiles/eta2_tests.dir/text/phrases_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/text/phrases_test.cpp.o.d"
  "/root/repo/tests/text/skipgram_test.cpp" "tests/CMakeFiles/eta2_tests.dir/text/skipgram_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/text/skipgram_test.cpp.o.d"
  "/root/repo/tests/text/tokenizer_test.cpp" "tests/CMakeFiles/eta2_tests.dir/text/tokenizer_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/text/tokenizer_test.cpp.o.d"
  "/root/repo/tests/text/vocab_test.cpp" "tests/CMakeFiles/eta2_tests.dir/text/vocab_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/text/vocab_test.cpp.o.d"
  "/root/repo/tests/truth/baselines_test.cpp" "tests/CMakeFiles/eta2_tests.dir/truth/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/truth/baselines_test.cpp.o.d"
  "/root/repo/tests/truth/eta2_mle_test.cpp" "tests/CMakeFiles/eta2_tests.dir/truth/eta2_mle_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/truth/eta2_mle_test.cpp.o.d"
  "/root/repo/tests/truth/expertise_store_test.cpp" "tests/CMakeFiles/eta2_tests.dir/truth/expertise_store_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/truth/expertise_store_test.cpp.o.d"
  "/root/repo/tests/truth/gauge_property_test.cpp" "tests/CMakeFiles/eta2_tests.dir/truth/gauge_property_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/truth/gauge_property_test.cpp.o.d"
  "/root/repo/tests/truth/observation_test.cpp" "tests/CMakeFiles/eta2_tests.dir/truth/observation_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/truth/observation_test.cpp.o.d"
  "/root/repo/tests/truth/task_confidence_test.cpp" "tests/CMakeFiles/eta2_tests.dir/truth/task_confidence_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/truth/task_confidence_test.cpp.o.d"
  "/root/repo/tests/truth/variance_em_test.cpp" "tests/CMakeFiles/eta2_tests.dir/truth/variance_em_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/truth/variance_em_test.cpp.o.d"
  "/root/repo/tests/umbrella_test.cpp" "tests/CMakeFiles/eta2_tests.dir/umbrella_test.cpp.o" "gcc" "tests/CMakeFiles/eta2_tests.dir/umbrella_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/eta2_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eta2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eta2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/eta2_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/truth/CMakeFiles/eta2_truth.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/eta2_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/eta2_text.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/eta2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eta2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
